//===- support/audit.cpp - Operator self-audit infrastructure -------------===//

#include "support/audit.h"

#include <mutex>

using namespace optoct::support;

std::atomic<bool> optoct::support::detail::AuditArmed{false};

static thread_local AuditLog *TlsAuditLog = nullptr;

void optoct::support::setAuditLogSink(AuditLog *Log) { TlsAuditLog = Log; }
AuditLog *optoct::support::auditLogSink() { return TlsAuditLog; }

namespace {

/// Configuration storage. Guarded by a mutex for the (rare) writes;
/// reads copy under the lock too — auditConfig() is only consulted on
/// the audited (slow) path, never on the disabled fast path.
struct ConfigStore {
  std::mutex Mu;
  AuditConfig Config;
};

ConfigStore &configStore() {
  static ConfigStore S;
  return S;
}

/// splitmix64, the same order-free hash the fault injector uses: the
/// sampling decisions depend only on (seed, tick), never on thread
/// identity or scheduling.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Fallback tick for audited closures outside any installed log (the
/// single-run CLI); per-thread, so still race-free.
std::uint64_t &fallbackTick() {
  static thread_local std::uint64_t Tick = 0;
  return Tick;
}

} // namespace

AuditConfig optoct::support::auditConfig() {
  ConfigStore &S = configStore();
  std::lock_guard<std::mutex> Lock(S.Mu);
  return S.Config;
}

void optoct::support::setAuditConfig(const AuditConfig &Config) {
  ConfigStore &S = configStore();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Config = Config;
  }
  detail::AuditArmed.store(Config.Enabled, std::memory_order_relaxed);
}

std::uint64_t optoct::support::auditNextTick() {
  return TlsAuditLog ? TlsAuditLog->nextTick() : fallbackTick()++;
}

bool optoct::support::auditShouldCrossCheck() {
  AuditConfig Config = auditConfig();
  if (Config.CrossCheckRate >= 1.0)
    return true;
  if (Config.CrossCheckRate <= 0.0)
    return false;
  double Coin = static_cast<double>(
                    mix64(Config.Seed ^ mix64(auditNextTick())) >> 11) *
                0x1.0p-53;
  return Coin < Config.CrossCheckRate;
}

std::uint64_t optoct::support::auditHash(std::uint64_t X) { return mix64(X); }
