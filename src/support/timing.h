//===- support/timing.h - Cycle and wall-clock timers ----------*- C++ -*-===//
///
/// \file
/// Cycle-accurate (rdtsc) and wall-clock timers used by the benchmark
/// harnesses and by the analyzer's per-operator statistics. The paper
/// reports per-closure runtimes in CPU cycles (Fig. 7); readCycles()
/// provides the same measurement here.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_TIMING_H
#define OPTOCT_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace optoct {

/// Reads the CPU timestamp counter. On x86 this is rdtsc; elsewhere it
/// falls back to a steady_clock-derived tick so the code stays portable.
std::uint64_t readCycles();

/// Accumulating wall-clock timer with start/stop semantics.
class WallTimer {
public:
  void start() { Begin = Clock::now(); Running = true; }

  void stop() {
    if (!Running)
      return;
    Accumulated += Clock::now() - Begin;
    Running = false;
  }

  void reset() {
    Accumulated = Duration::zero();
    Running = false;
  }

  /// Total accumulated time in seconds.
  double seconds() const {
    Duration Total = Accumulated;
    if (Running)
      Total += Clock::now() - Begin;
    return std::chrono::duration<double>(Total).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point Begin;
  Duration Accumulated = Duration::zero();
  bool Running = false;
};

/// RAII helper that adds the scope's duration (in cycles) to a counter.
class ScopedCycleTimer {
public:
  explicit ScopedCycleTimer(std::uint64_t &Sink)
      : Sink(Sink), Begin(readCycles()) {}
  ~ScopedCycleTimer() { Sink += readCycles() - Begin; }

  ScopedCycleTimer(const ScopedCycleTimer &) = delete;
  ScopedCycleTimer &operator=(const ScopedCycleTimer &) = delete;

private:
  std::uint64_t &Sink;
  std::uint64_t Begin;
};

} // namespace optoct

#endif // OPTOCT_SUPPORT_TIMING_H
