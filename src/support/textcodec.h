//===- support/textcodec.h - Percent-escaped line-safe text -----*- C++ -*-===//
///
/// \file
/// The one percent-escape used by every line-oriented record format in
/// the runtime: journal record bodies (runtime/journal.cpp) and the
/// daemon's request/response protocol (server/protocol.cpp). Values are
/// binary-safe within one line — embedded newlines, '%', and control
/// bytes are escaped as %XX — so a "key value\n" framing can carry
/// arbitrary program sources and error text without a length prefix.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_TEXTCODEC_H
#define OPTOCT_SUPPORT_TEXTCODEC_H

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace optoct::support {

/// Escapes '%', control bytes, and DEL as %XX; everything else passes
/// through verbatim. The output never contains '\n'.
inline std::string percentEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '%' || U < 0x20 || U == 0x7f) {
      char Buf[4];
      std::snprintf(Buf, sizeof(Buf), "%%%02x", U);
      Out += Buf;
    } else
      Out += C;
  }
  return Out;
}

/// Inverse of percentEscape. Returns false on a malformed escape
/// (truncated or non-hex) — escaped bytes are untrusted input after a
/// crash or over a socket, so this must reject, never assert.
inline bool percentUnescape(const std::string &S, std::string &Out) {
  Out.clear();
  Out.reserve(S.size());
  for (std::size_t I = 0; I != S.size(); ++I) {
    if (S[I] != '%') {
      Out += S[I];
      continue;
    }
    if (I + 2 >= S.size())
      return false;
    auto Hex = [](char C) -> int {
      if (C >= '0' && C <= '9')
        return C - '0';
      if (C >= 'a' && C <= 'f')
        return C - 'a' + 10;
      if (C >= 'A' && C <= 'F')
        return C - 'A' + 10;
      return -1;
    };
    int Hi = Hex(S[I + 1]), Lo = Hex(S[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>(Hi * 16 + Lo);
    I += 2;
  }
  return true;
}

/// Strict full-string parses: the whole value must consume, no sign,
/// no trailing junk. Record fields are untrusted bytes (crash debris,
/// socket input), so every parse must reject, never wrap or crash.
inline bool parseU64(const std::string &S, std::uint64_t &V) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long X = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size() || S[0] == '-')
    return false;
  V = X;
  return true;
}

inline bool parseHex64(const std::string &S, std::uint64_t &V) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long X = std::strtoull(S.c_str(), &End, 16);
  if (errno != 0 || End != S.c_str() + S.size() || S[0] == '-')
    return false;
  V = X;
  return true;
}

/// Fixed-width lowercase hex, the journal's and cache's key rendering.
inline std::string hex64(std::uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64, V);
  return Buf;
}

/// %.17g round-trips IEEE doubles exactly (same contract as the
/// octagon serializer); "inf"/"-inf"/"nan" are normalized by strtod.
inline std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace optoct::support

#endif // OPTOCT_SUPPORT_TEXTCODEC_H
