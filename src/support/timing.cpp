//===- support/timing.cpp ------------------------------------------------===//

#include "support/timing.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace optoct {

std::uint64_t readCycles() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __rdtsc();
#else
  auto Now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
#endif
}

} // namespace optoct
