//===- support/budget.h - Analysis budgets and cancellation -----*- C++ -*-===//
///
/// \file
/// Resource budgets and cooperative cancellation for analysis runs.
/// One pathological job must not be able to take down a batch: the
/// engine worklist loop and the closure outer loops poll a cheap
/// thread-local token, and exceeding any budget raises BudgetExceeded,
/// which the engine turns into a sound *degraded* result (remaining
/// invariants widened to Top) instead of a crash.
///
/// Three budgets:
///   * wall-clock deadline (checked on a sampled poll; also enforced
///     from outside by the batch runtime's watchdog via requestCancel),
///   * block-visit fuel (AnalysisOptions::MaxBlockVisits — the engine
///     charges it directly),
///   * DBM-cell allocation fuel (cumulative cells across all Octagon
///     buffers a job constructs; a deterministic memory-pressure proxy).
///
/// Cost contract: with no token installed, pollBudget() is one
/// thread-local load and a predicted-not-taken branch; the closure hot
/// paths rely on this staying under the noise floor.
///
/// Threading: a token is polled and charged only by the thread that
/// installed it (BudgetScope); requestCancel() may be called from any
/// thread (the watchdog) and is the only cross-thread entry point.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_BUDGET_H
#define OPTOCT_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <string>

namespace optoct::support {

/// What tripped a budget. None means the run finished inside budget.
enum class BudgetReason {
  None,
  Deadline,    ///< Wall-clock deadline passed (self-polled).
  Cancelled,   ///< requestCancel() — watchdog flag or external abort.
  BlockVisits, ///< Fixpoint block-visit fuel exhausted.
  DbmCells,    ///< Cumulative DBM-cell allocation fuel exhausted.
};

const char *budgetReasonName(BudgetReason R);

/// Raised at a poll/charge site when a budget is exhausted. The engine
/// catches this and degrades; anything else escaping an analysis is a
/// real failure.
class BudgetExceeded : public std::exception {
public:
  BudgetExceeded(BudgetReason Reason, std::string What)
      : Reason_(Reason), What_(std::move(What)) {}
  BudgetReason reason() const { return Reason_; }
  const char *what() const noexcept override { return What_.c_str(); }

private:
  BudgetReason Reason_;
  std::string What_;
};

/// Per-job budget configuration. Zero disables the respective limit.
struct AnalysisBudget {
  std::uint64_t DeadlineMs = 0;   ///< Wall-clock deadline per attempt.
  std::uint64_t MaxDbmCells = 0;  ///< Cumulative DBM cells allocated.
};

/// Shared cancellation/budget state for one analysis attempt. The
/// owner (batch runtime, CLI) arms it and installs it via BudgetScope;
/// a watchdog may hold a second reference and call requestCancel().
class CancellationToken {
public:
  /// Starts the clock: resolves DeadlineMs against steady_clock::now()
  /// and resets the fuel counters.
  void arm(const AnalysisBudget &Budget);

  /// Requests cooperative cancellation (thread-safe). \p Why is
  /// reported by the next poll on the owning thread; Deadline marks a
  /// watchdog-flagged timeout, Cancelled an external abort.
  void requestCancel(BudgetReason Why = BudgetReason::Cancelled);

  bool cancelRequested() const {
    return Cancel.load(std::memory_order_relaxed);
  }

  /// True once the armed deadline is in the past (callable from any
  /// thread; the watchdog's scan predicate).
  bool deadlinePassed() const;

  /// Drops the armed deadline (the attempt is over). Keeps watchdog
  /// scans idle between attempts so a stale deadline cannot flag the
  /// next one.
  void clearDeadline() { DeadlineNs.store(0, std::memory_order_relaxed); }

  /// Owning-thread poll: throws BudgetExceeded on cancellation, and on
  /// a passed deadline (clock sampled every 64th call to stay cheap).
  void poll() {
    if (Cancel.load(std::memory_order_relaxed))
      throwCancelled();
    if ((++PollTick & 63u) == 0)
      checkDeadline();
  }

  /// Charges \p Cells DBM cells against the allocation fuel; throws
  /// BudgetExceeded when the cap is crossed. Owning thread only.
  void chargeCells(std::uint64_t Cells) {
    if (MaxCells == 0)
      return;
    CellsUsed += Cells;
    if (CellsUsed > MaxCells)
      throwCellsExhausted();
  }

  std::uint64_t cellsUsed() const { return CellsUsed; }

private:
  [[noreturn]] void throwCancelled();
  [[noreturn]] void throwCellsExhausted();
  void checkDeadline(); ///< Throws when past the deadline.

  std::atomic<bool> Cancel{false};
  std::atomic<int> CancelWhy{static_cast<int>(BudgetReason::Cancelled)};
  /// Deadline as steady_clock nanoseconds since its epoch; 0 = none.
  /// Atomic because the watchdog scans it while the job thread arms it.
  std::atomic<std::int64_t> DeadlineNs{0};
  std::uint64_t MaxCells = 0;
  std::uint64_t CellsUsed = 0;
  unsigned PollTick = 0;
};

namespace detail {
/// The calling thread's active token; nullptr = unbudgeted (all polls
/// no-op). Exposed only so the poll fast path can inline. constinit
/// inline (rather than extern with an out-of-line definition) so every
/// TU sees the constant initializer: the compiler emits a direct TLS
/// load with no _ZTW wrapper call, making the unbudgeted poll genuinely
/// one fs-relative load — and sidestepping a GCC UBSan false positive
/// that flags the wrapper's returned address as a null load at -O2.
constinit inline thread_local CancellationToken *TlsToken = nullptr;
} // namespace detail

/// Installs \p Token as the calling thread's active token for the
/// scope's lifetime (nullptr = explicitly unbudgeted).
class BudgetScope {
public:
  explicit BudgetScope(CancellationToken *Token) : Prev(detail::TlsToken) {
    detail::TlsToken = Token;
  }
  ~BudgetScope() { detail::TlsToken = Prev; }
  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

private:
  CancellationToken *Prev;
};

/// The engine/closure poll point. One TLS load when unbudgeted.
inline void pollBudget() {
  if (CancellationToken *T = detail::TlsToken)
    T->poll();
}

/// Charges DBM-cell allocation fuel (no-op when unbudgeted).
inline void chargeDbmCells(std::uint64_t Cells) {
  if (CancellationToken *T = detail::TlsToken)
    T->chargeCells(Cells);
}

/// The calling thread's active token (nullptr when unbudgeted).
inline CancellationToken *currentBudgetToken() { return detail::TlsToken; }

/// Mutes budget polling for the remainder of the current scope chain.
/// The engine calls this after catching BudgetExceeded so its sound
/// cleanup passes (Top invariants, final assertion check) cannot trip
/// the same budget again; BudgetScope unwinding restores the token.
inline void disarmCurrentBudget() { detail::TlsToken = nullptr; }

} // namespace optoct::support

#endif // OPTOCT_SUPPORT_BUDGET_H
