//===- support/faultinject.cpp - Deterministic fault injection ------------===//

#include "support/faultinject.h"

#include "support/budget.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

using namespace optoct::support;

std::atomic<bool> optoct::support::detail::FaultsArmed{false};

namespace {

/// splitmix64: the seeded, order-free gate hash. Deterministic across
/// platforms and worker interleavings.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

std::uint64_t hashString(const char *S) {
  std::uint64_t H = 1469598103934665603ull; // FNV-1a
  for (; S && *S; ++S)
    H = (H ^ static_cast<unsigned char>(*S)) * 1099511628211ull;
  return H;
}

} // namespace

struct FaultPlan::State {
  std::mutex Mu;
  std::vector<FaultRule> Rules;
  std::uint64_t Seed = 0;
  /// Triggers recorded so far, keyed by rule index and job name.
  std::unordered_map<std::string, unsigned> HitCounts;
};

FaultPlan::State &FaultPlan::state() {
  static State S;
  return S;
}

FaultPlan &FaultPlan::global() {
  static FaultPlan P;
  return P;
}

void FaultPlan::clear() {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Rules.clear();
  S.HitCounts.clear();
  S.Seed = 0;
  detail::FaultsArmed.store(false, std::memory_order_relaxed);
}

void FaultPlan::setSeed(std::uint64_t Seed) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Seed = Seed;
}

void FaultPlan::addRule(FaultRule Rule) {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Rules.push_back(std::move(Rule));
  detail::FaultsArmed.store(true, std::memory_order_relaxed);
}

void FaultPlan::resetCounters() {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.HitCounts.clear();
}

void FaultPlan::notePriorLethalAttempts(const std::string &Job,
                                        unsigned PriorAttempts) {
  if (PriorAttempts == 0)
    return;
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  for (std::size_t R = 0; R != S.Rules.size(); ++R) {
    const FaultRule &Rule = S.Rules[R];
    if (!faultKindLethal(Rule.Kind))
      continue;
    if (!Rule.JobPattern.empty() &&
        Job.find(Rule.JobPattern) == std::string::npos)
      continue;
    // A lethal rule kills the worker the moment it triggers, so each
    // dead attempt ended at visit index After + (firings so far): k
    // prior attempts consumed min(k, Hits) of the rule's firing window
    // and After skipped visits at most once. Raising the counter to
    // After + min(k, Hits) replays exactly that history, keeping
    // "hits=1 fails the first attempt, the retry passes" true across
    // process respawns.
    unsigned &Count = S.HitCounts[std::to_string(R) + "\x1f" + Job];
    unsigned Spent =
        Rule.After + std::min(PriorAttempts, Rule.Hits);
    if (Count < Spent)
      Count = Spent;
  }
}

bool FaultPlan::parseRule(const std::string &Spec, std::string &Error) {
  FaultRule Rule;
  bool HaveSite = false, HaveKind = false;
  std::size_t Pos = 0;
  while (Pos < Spec.size()) {
    std::size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Field = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    std::size_t Eq = Field.find('=');
    if (Eq == std::string::npos) {
      Error = "fault spec field '" + Field + "' is not key=value";
      return false;
    }
    std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
    try {
      if (Key == "site") {
        Rule.Site = Val;
        HaveSite = true;
      } else if (Key == "kind") {
        HaveKind = true;
        if (Val == "alloc")
          Rule.Kind = FaultKind::AllocFail;
        else if (Val == "slow")
          Rule.Kind = FaultKind::Slow;
        else if (Val == "timeout")
          Rule.Kind = FaultKind::Timeout;
        else if (Val == "poison")
          Rule.Kind = FaultKind::PoisonBound;
        else if (Val == "crash")
          Rule.Kind = FaultKind::Crash;
        else if (Val == "segv")
          Rule.Kind = FaultKind::Segv;
        else if (Val == "oom")
          Rule.Kind = FaultKind::Oom;
        else if (Val == "hang")
          Rule.Kind = FaultKind::Hang;
        else {
          Error = "unknown fault kind '" + Val + "'";
          return false;
        }
      } else if (Key == "job")
        Rule.JobPattern = Val;
      else if (Key == "hits")
        Rule.Hits = static_cast<unsigned>(std::stoul(Val));
      else if (Key == "after")
        Rule.After = static_cast<unsigned>(std::stoul(Val));
      else if (Key == "ms")
        Rule.SlowMs = static_cast<unsigned>(std::stoul(Val));
      else if (Key == "prob")
        Rule.Probability = std::stod(Val);
      else {
        Error = "unknown fault spec key '" + Key + "'";
        return false;
      }
    } catch (const std::exception &) {
      Error = "bad value in fault spec field '" + Field + "'";
      return false;
    }
  }
  if (!HaveSite || !HaveKind) {
    Error = "fault spec needs at least site=<s>,kind=<k>";
    return false;
  }
  addRule(std::move(Rule));
  return true;
}

void optoct::support::faultPointSlow(const char *Site, double *Bound) {
  FaultPlan::State &S = FaultPlan::global().state();
  const char *Job = detail::FaultJobName ? detail::FaultJobName : "";

  // Decide under the lock, act after releasing it (Slow sleeps; the
  // throws must not leave the mutex held).
  FaultKind Kind{};
  unsigned SlowMs = 0;
  bool Trigger = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (std::size_t R = 0; R != S.Rules.size(); ++R) {
      const FaultRule &Rule = S.Rules[R];
      if (Rule.Site != Site)
        continue;
      if (!Rule.JobPattern.empty() &&
          std::string(Job).find(Rule.JobPattern) == std::string::npos)
        continue;
      if (Rule.Probability < 1.0) {
        std::uint64_t H =
            mix64(S.Seed ^ mix64(hashString(Site)) ^ mix64(hashString(Job)));
        double Coin = static_cast<double>(H >> 11) * 0x1.0p-53;
        if (Coin >= Rule.Probability)
          continue;
      }
      std::string Key = std::to_string(R) + "\x1f" + Job;
      // The counter records matching *visits*; the rule triggers inside
      // the window [After, After + Hits) — "skip the first After, then
      // fire Hits times". After == 0 is the original burn-out behavior.
      unsigned &Count = S.HitCounts[Key];
      unsigned Visit = Count++;
      if (Visit < Rule.After || Visit - Rule.After >= Rule.Hits)
        continue;
      Kind = Rule.Kind;
      SlowMs = Rule.SlowMs;
      Trigger = true;
      break;
    }
  }
  if (!Trigger)
    return;

  switch (Kind) {
  case FaultKind::AllocFail:
    throw std::bad_alloc();
  case FaultKind::Slow:
    std::this_thread::sleep_for(std::chrono::milliseconds(SlowMs));
    return;
  case FaultKind::Timeout:
    throw BudgetExceeded(BudgetReason::Deadline, "injected timeout");
  case FaultKind::PoisonBound:
    if (Bound)
      *Bound = std::numeric_limits<double>::quiet_NaN();
    return;
  case FaultKind::Crash:
    // Immediate process death: no unwinding, no atexit, no stream
    // flushes — the closest portable stand-in for a SIGKILL. Anything
    // not already fsync'd (journal records are) is lost, which is the
    // point of the crash-at-checkpoint resume tests.
    std::_Exit(FaultCrashExitCode);
  case FaultKind::Segv:
    // A raw segfault, not a modeled one: restore the default
    // disposition first so sanitizer/death-test handlers cannot turn
    // the signal into a clean exit, then raise it. The supervisor must
    // see a genuine WIFSIGNALED(SIGSEGV) worker corpse.
    std::signal(SIGSEGV, SIG_DFL);
    ::raise(SIGSEGV);
    std::_Exit(FaultCrashExitCode); // unreachable; belt and braces
  case FaultKind::Oom: {
    // Unbounded allocate-and-touch loop. Under the supervisor's
    // RLIMIT_AS the allocation fails within a few hundred iterations
    // and the job dies the way unhandled allocation failure does:
    // abort, i.e. SIGABRT. The 1 GiB self-cap bounds the damage if
    // someone injects this without process isolation or a limit.
    constexpr std::size_t Chunk = std::size_t{1} << 20;
    constexpr std::size_t SelfCap = std::size_t{1} << 30;
    std::size_t Hoarded = 0;
    for (;;) {
      char *P = static_cast<char *>(std::malloc(Chunk));
      if (!P || Hoarded >= SelfCap) {
        std::signal(SIGABRT, SIG_DFL);
        std::abort();
      }
      std::memset(P, 0x5a, Chunk); // touch every page: RSS, not just VA
      Hoarded += Chunk;            // never freed — that is the fault
    }
  }
  case FaultKind::Hang: {
    // A non-polling spin: no pollBudget(), no sleep, no syscalls the
    // cancellation machinery could piggyback on. Thread-mode soft
    // cancel cannot stop it; only the supervisor's hard wall-clock
    // SIGKILL can. Capped at ten minutes so a misconfigured run
    // eventually frees CI instead of wedging it forever.
    auto End = std::chrono::steady_clock::now() + std::chrono::minutes(10);
    volatile std::uint64_t Sink = 0;
    while (std::chrono::steady_clock::now() < End)
      Sink = Sink + 1;
    return;
  }
  }
}
