//===- support/random.h - Deterministic random generation ------*- C++ -*-===//
///
/// \file
/// Seeded RNG wrapper so tests, benchmarks, and the workload generator
/// are reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_RANDOM_H
#define OPTOCT_SUPPORT_RANDOM_H

#include <cstdint>
#include <random>

namespace optoct {

/// Deterministic pseudo-random source. All randomized components in the
/// repo draw from this class with explicit seeds.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi] inclusive.
  int intIn(int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Engine);
  }

  /// Uniform size_t in [0, Hi) — handy for index selection.
  std::size_t indexBelow(std::size_t Hi) {
    return std::uniform_int_distribution<std::size_t>(0, Hi - 1)(Engine);
  }

  /// Uniform double in [Lo, Hi).
  double doubleIn(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Engine);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool chance(double P) {
    return std::bernoulli_distribution(P)(Engine);
  }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace optoct

#endif // OPTOCT_SUPPORT_RANDOM_H
