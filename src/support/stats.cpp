//===- support/stats.cpp -------------------------------------------------===//

#include "support/stats.h"

// OctStats is header-only today; this TU anchors the library and keeps a
// place for future out-of-line statistics sinks.
