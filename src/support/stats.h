//===- support/stats.h - Analysis statistics registry ----------*- C++ -*-===//
///
/// \file
/// Counters and cycle accumulators for the octagon operators. The paper's
/// evaluation reports per-benchmark closure counts, DBM sizes (Table 2),
/// aggregate closure time (Fig. 6), octagon-analysis time (Fig. 8), and
/// per-closure traces (Fig. 7); OctStats collects all of that.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_STATS_H
#define OPTOCT_SUPPORT_STATS_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace optoct {

/// One recorded closure event, for the Fig. 7 trace.
struct ClosureEvent {
  std::uint64_t Cycles; ///< Duration of this closure call.
  unsigned NumVars;     ///< Number of variables in the DBM.
  int KindTag;          ///< Which closure ran (library-specific tag).
};

/// Statistics gathered while a program analysis runs against one octagon
/// library. Attached to the domain adapters in src/analysis.
class OctStats {
public:
  void recordClosure(std::uint64_t Cycles, unsigned NumVars, int KindTag) {
    ++NumClosures;
    ClosureCycles += Cycles;
    if (NumVars < MinVars)
      MinVars = NumVars;
    if (NumVars > MaxVars)
      MaxVars = NumVars;
    if (TraceEnabled)
      Trace.push_back({Cycles, NumVars, KindTag});
  }

  void addOctagonCycles(std::uint64_t Cycles) { OctagonCycles += Cycles; }

  void reset() {
    NumClosures = 0;
    ClosureCycles = 0;
    OctagonCycles = 0;
    MinVars = std::numeric_limits<unsigned>::max();
    MaxVars = 0;
    Trace.clear();
  }

  void enableTrace(bool On) { TraceEnabled = On; }

  std::uint64_t numClosures() const { return NumClosures; }
  std::uint64_t closureCycles() const { return ClosureCycles; }
  std::uint64_t octagonCycles() const { return OctagonCycles; }
  unsigned minVars() const { return NumClosures == 0 ? 0 : MinVars; }
  unsigned maxVars() const { return MaxVars; }
  const std::vector<ClosureEvent> &trace() const { return Trace; }

private:
  std::uint64_t NumClosures = 0;
  std::uint64_t ClosureCycles = 0;
  std::uint64_t OctagonCycles = 0;
  unsigned MinVars = std::numeric_limits<unsigned>::max();
  unsigned MaxVars = 0;
  bool TraceEnabled = false;
  std::vector<ClosureEvent> Trace;
};

} // namespace optoct

#endif // OPTOCT_SUPPORT_STATS_H
