//===- support/fnv.h - FNV-1a 64-bit hashing --------------------*- C++ -*-===//
///
/// \file
/// The one FNV-1a 64 implementation shared by every integrity check in
/// the runtime: the crash-safe journal's record checksums
/// (runtime/journal.cpp) and the supervisor pipe protocol's frame
/// checksums (runtime/ipc.cpp). Tiny, dependency-free, and plenty for
/// torn-write/torn-frame detection — the threat model is a crash or a
/// half-dead worker mid-write, not an adversary.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_FNV_H
#define OPTOCT_SUPPORT_FNV_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace optoct::support {

inline constexpr std::uint64_t Fnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t Fnv1a64Prime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const char *Data, std::size_t Len,
                             std::uint64_t Seed = Fnv1a64Offset) {
  std::uint64_t H = Seed;
  for (std::size_t I = 0; I != Len; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= Fnv1a64Prime;
  }
  return H;
}

inline std::uint64_t fnv1a64(const std::string &S,
                             std::uint64_t Seed = Fnv1a64Offset) {
  return fnv1a64(S.data(), S.size(), Seed);
}

} // namespace optoct::support

#endif // OPTOCT_SUPPORT_FNV_H
