//===- support/bitvector.h - Dense bit vector -------------------*- C++ -*-===//
///
/// \file
/// Fixed-width dense bit vector used by the client dataflow analyses
/// (liveness, reaching definitions).
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_BITVECTOR_H
#define OPTOCT_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace optoct {

/// A fixed-size vector of bits with the set operations dataflow needs.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(std::size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  std::size_t size() const { return NumBits; }

  void set(std::size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= std::uint64_t(1) << (I % 64);
  }
  void reset(std::size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(std::uint64_t(1) << (I % 64));
  }
  bool test(std::size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// this |= Other. Returns true if any bit changed.
  bool orWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    std::uint64_t Changed = 0;
    for (std::size_t W = 0; W != Words.size(); ++W) {
      std::uint64_t New = Words[W] | Other.Words[W];
      Changed |= New ^ Words[W];
      Words[W] = New;
    }
    return Changed != 0;
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (std::size_t W = 0; W != Words.size(); ++W)
      Words[W] &= ~Other.Words[W];
  }

  std::size_t count() const {
    std::size_t N = 0;
    for (std::uint64_t W : Words)
      N += static_cast<std::size_t>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

private:
  std::size_t NumBits = 0;
  std::vector<std::uint64_t> Words;
};

} // namespace optoct

#endif // OPTOCT_SUPPORT_BITVECTOR_H
