//===- support/table.h - ASCII table printing for harnesses ----*- C++ -*-===//
///
/// \file
/// Minimal column-aligned table printer used by the bench harnesses to
/// emit the paper's tables and figure series in a readable form.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_SUPPORT_TABLE_H
#define OPTOCT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace optoct {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table (header, rule, rows) to a string.
  std::string render() const;

  /// Formats a double with \p Precision fractional digits.
  static std::string num(double Value, int Precision = 2);

private:
  std::vector<std::vector<std::string>> Rows;
  std::size_t NumCols;
};

} // namespace optoct

#endif // OPTOCT_SUPPORT_TABLE_H
