//===- support/table.cpp -------------------------------------------------===//

#include "support/table.h"

#include <cassert>
#include <cstdio>

using namespace optoct;

TextTable::TextTable(std::vector<std::string> Header)
    : NumCols(Header.size()) {
  Rows.push_back(std::move(Header));
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == NumCols && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C != NumCols; ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  std::string Out;
  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C != NumCols; ++C) {
      Out += Row[C];
      if (C + 1 == NumCols)
        break;
      Out.append(Widths[C] - Row[C].size() + 2, ' ');
    }
    Out += '\n';
  };

  emitRow(Rows.front());
  std::size_t RuleLen = 0;
  for (std::size_t C = 0; C != NumCols; ++C)
    RuleLen += Widths[C] + (C + 1 == NumCols ? 0 : 2);
  Out.append(RuleLen, '-');
  Out += '\n';
  for (std::size_t R = 1; R != Rows.size(); ++R)
    emitRow(Rows[R]);
  return Out;
}

std::string TextTable::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}
