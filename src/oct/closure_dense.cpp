//===- oct/closure_dense.cpp - Optimized dense closure (Algorithm 3) -----===//

#include "oct/closure_dense.h"

#include "oct/vector_min.h"
#include "support/budget.h"
#include "support/faultinject.h"

using namespace optoct;

void optoct::shortestPathDense(HalfDbm &M, ClosureScratch &Scratch) {
  unsigned D = M.dim();
  if (D == 0)
    return;
  Scratch.ensure(D);
  double *ColK = Scratch.ColK.data();
  double *ColK1 = Scratch.ColK1.data();
  double *RowK = Scratch.RowK.data();
  double *RowK1 = Scratch.RowK1.data();

  for (unsigned K = 0, N = M.numVars(); K != N; ++K) {
    // O(n) work per pivot pair; one budget poll here is noise, yet it
    // bounds the time to notice a deadline/cancel by one pivot.
    support::pollBudget();
    support::faultPoint("closure.pivot");
    unsigned KK = 2 * K, KK1 = 2 * K + 1;
    // The in-block operands: O(2k, 2k+1) and O(2k+1, 2k). Both live in
    // the 2x2 diagonal block of the lower triangle and do not change
    // during this iteration.
    double OkK1 = M.at(KK, KK1);
    double Ok1K = M.at(KK1, KK);

    // Step 1: update the pivot columns (and, via coherence, the pivot
    // rows). For every i outside the pivot pair:
    //   O(i,2k+1) = min(O(i,2k+1), O(i,2k)   + O(2k,2k+1))   [pivot 2k]
    //   O(i,2k)   = min(O(i,2k),   O(i,2k+1) + O(2k+1,2k))   [pivot 2k+1]
    // The second update must see the first one's result. All operands
    // are reachable within the lower triangle, so no asymmetry issue
    // arises. The final values are gathered into contiguous arrays.
    //
    // The adds here would want boundAdd (oct/value.h): a column entry
    // can be +inf while the in-block operand is negative. But both
    // in-block operands are loop-invariant, so the saturation test is
    // hoisted: a +inf operand makes boundAdd return +inf, which never
    // wins the min, so that update is skipped wholesale; for a finite
    // operand plain + IS boundAdd, since stored bounds live in
    // R ∪ {+inf} (-inf and NaN are sanitized out at addConstraints /
    // assign). Keeping the inner loop free of per-iteration saturation
    // tests is worth several percent of closure throughput.
    const bool FinK1 = isFinite(OkK1), FinK = isFinite(Ok1K);
    for (unsigned I = 0; I != D; ++I) {
      if (I == KK || I == KK1) {
        ColK[I] = I == KK ? 0.0 : Ok1K;
        ColK1[I] = I == KK ? OkK1 : 0.0;
        continue;
      }
      double Vk = M.get(I, KK);
      double Vk1 = M.get(I, KK1);
      if (FinK1) {
        double T1 = Vk + OkK1;
        if (T1 < Vk1)
          Vk1 = T1;
      }
      if (FinK) {
        double T0 = Vk1 + Ok1K;
        if (T0 < Vk)
          Vk = T0;
      }
      M.set(I, KK, Vk);
      M.set(I, KK1, Vk1);
      ColK[I] = Vk;
      ColK1[I] = Vk1;
    }

    // Pivot row buffers by coherence: O(2k,j) = O(j^1,2k+1) and
    // O(2k+1,j) = O(j^1,2k).
    for (unsigned J = 0; J != D; ++J) {
      RowK[J] = ColK1[J ^ 1u];
      RowK1[J] = ColK[J ^ 1u];
    }

    // Step 2: remaining entries, two min operations each, vectorized.
    // Rows 2k and 2k+1 and the pivot-column entries are included — the
    // extra updates are derivations along valid paths and hence
    // harmless no-ops — which keeps the inner loop branch-free.
    for (unsigned I = 0; I != D; ++I) {
      double C1 = ColK[I];
      double C2 = ColK1[I];
      minPlusRow2(M.row(I), RowK, C1, RowK1, C2, (I | 1u) + 1);
    }
  }
}

void optoct::strengthenDense(HalfDbm &M, ClosureScratch &Scratch) {
  unsigned D = M.dim();
  if (D == 0)
    return;
  Scratch.ensure(D);
  double *T = Scratch.T.data();

  // Gather the diagonal operands contiguously: T[j] = O(j^1, j); the row
  // operand d_i = O(i, i^1) is then T[i^1] (Section 5.2).
  for (unsigned J = 0; J != D; ++J)
    T[J] = M.get(J ^ 1u, J);

  for (unsigned I = 0; I != D; ++I)
    strengthenRow(M.row(I), T, T[I ^ 1u], (I | 1u) + 1);
}

bool optoct::closureDense(HalfDbm &M, ClosureScratch &Scratch) {
  shortestPathDense(M, Scratch);
  strengthenDense(M, Scratch);

  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I)
    if (M.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    M.at(I, I) = 0.0;
  return true;
}
