//===- oct/serialize.h - Octagon text serialization -------------*- C++ -*-===//
///
/// \file
/// Lossless text serialization of octagon elements, for checkpointing
/// analysis states and exchanging invariants between tools. The format
/// stores the constraint list of the strongly closed form:
///
///   octagon <numVars>
///   bottom                          (empty octagons only)
///   c <coefI> <varI> <coefJ> <varJ> <bound>
///   ...
///   end
///
/// Deserializing re-adds the constraints; because the closed form is
/// canonical, serialize/deserialize round-trips to an equal element.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_SERIALIZE_H
#define OPTOCT_OCT_SERIALIZE_H

#include "oct/octagon.h"

#include <optional>
#include <string>

namespace optoct {

/// Renders \p O (closing it first) in the text format above.
std::string serializeOctagon(Octagon &O);

/// Largest accepted variable count when deserializing. Serialized
/// octagons are untrusted input (checkpoint files survive crashes and
/// operators edit them); a hostile or corrupted header must not drive a
/// 2n(n+1) allocation into overflow or OOM before validation can react.
constexpr unsigned MaxSerializedVars = 1u << 20;

/// Parses the text format; returns std::nullopt and fills \p Error on
/// malformed input (including variable counts above MaxSerializedVars
/// and allocation failure — it never throws).
std::optional<Octagon> deserializeOctagon(const std::string &Text,
                                          std::string &Error);

} // namespace optoct

#endif // OPTOCT_OCT_SERIALIZE_H
