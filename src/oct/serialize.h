//===- oct/serialize.h - Octagon text serialization -------------*- C++ -*-===//
///
/// \file
/// Lossless text serialization of octagon elements, for checkpointing
/// analysis states and exchanging invariants between tools. The format
/// stores the constraint list of the strongly closed form:
///
///   octagon <numVars>
///   bottom                          (empty octagons only)
///   c <coefI> <varI> <coefJ> <varJ> <bound>
///   ...
///   end
///
/// Deserializing re-adds the constraints; because the closed form is
/// canonical, serialize/deserialize round-trips to an equal element.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_SERIALIZE_H
#define OPTOCT_OCT_SERIALIZE_H

#include "oct/octagon.h"

#include <optional>
#include <string>

namespace optoct {

/// Renders \p O (closing it first) in the text format above.
std::string serializeOctagon(Octagon &O);

/// Parses the text format; returns std::nullopt and fills \p Error on
/// malformed input.
std::optional<Octagon> deserializeOctagon(const std::string &Text,
                                          std::string &Error);

} // namespace optoct

#endif // OPTOCT_OCT_SERIALIZE_H
