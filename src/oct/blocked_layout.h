//===- oct/blocked_layout.h - Contiguous per-component sub-DBMs -*- C++ -*-===//
///
/// \file
/// The blocked component layout that closes the decomposed-vectorization
/// gap: a live component with m variables owns exactly the sub-half-DBM
/// a standalone m-variable octagon would (2m(m+1) packed doubles, the
/// component's variables renumbered 0..m-1), and pack() gathers it into
/// a contiguous scratch block with one pass through the coherence index.
/// The lattice operators (oct/octagon_ops.cpp) then run the flat span
/// kernels of oct/vector_ops.h over a whole block — or over many small
/// components' blocks laid end to end, so k tiny components pay one
/// kernel dispatch instead of k — and scatter() writes the results back
/// to the same slots pack() read.
///
/// Slot-set equivalence (what keeps nni exact): a block holds exactly
/// the stored lower-triangle slots whose variable pair lies inside the
/// component — the same set the scalar legs' forEachComponentSlot
/// visits — so a counting kernel's finite count over the block equals
/// the scalar leg's count over the component, entry for entry.
///
/// Two pack flavors mirror the two partition semantics of Section 4:
///   * packComponent — pure span copies. Valid when every pair of the
///     component is materialized in the source buffer: refined
///     partitions (join/widen: each refined pair lies inside one
///     component of *each* input) and FullyInit matrices.
///   * packComponentEntry — reads through the partition like
///     Octagon::entry(), substituting implicit trivia (+inf, 0 on the
///     diagonal) for unrelated pairs. Needed for union-merged
///     partitions (meet, narrowing on partial inputs) and for
///     Decomposed receivers of inclusion/equality, whose merged
///     components can relate pairs neither input materialized. Falls
///     back to the pure-copy pack when the whole component sits inside
///     one source block (the common case when both inputs agree on the
///     partition).
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_BLOCKED_LAYOUT_H
#define OPTOCT_OCT_BLOCKED_LAYOUT_H

#include "oct/dbm.h"
#include "oct/partition.h"
#include "support/aligned.h"

#include <cstddef>
#include <vector>

namespace optoct {

/// Packed size of one m-variable component block: the sub-half-DBM of
/// an m-variable octagon, 2m(m+1) doubles.
inline std::size_t blockSize(std::size_t NumCompVars) {
  return 2 * NumCompVars * (NumCompVars + 1);
}

/// Per-thread pack/scatter scratch: two operand areas and one result
/// area, each large enough for every component block of one operator
/// call laid end to end (bounded by matSize(n), since components are
/// disjoint). Grown geometrically like the closure scratch and wired
/// into reserveClosureScratch() so the batch runtime's worker arenas
/// pre-size it.
struct BlockScratch {
  AlignedBuffer<double> A;
  AlignedBuffer<double> B;
  AlignedBuffer<double> R;

  void ensure(std::size_t Len) {
    if (A.size() >= Len)
      return;
    std::size_t Cap = A.size() ? A.size() : 64;
    while (Cap < Len)
      Cap *= 2;
    A.resizeDiscard(Cap);
    B.resizeDiscard(Cap);
    R.resizeDiscard(Cap);
  }
};

/// The calling thread's pack/scatter scratch.
BlockScratch &blockScratch();

/// Pre-sizes the calling thread's scratch for octagons of \p NumVars.
void reserveBlockScratch(unsigned NumVars);

/// Gathers the component \p Vars (sorted ascending) of \p M into the
/// contiguous block \p Dst (blockSize(Vars.size()) doubles). Pure span
/// copies: every pair of \p Vars must be materialized in \p M.
void packComponent(double *Dst, const HalfDbm &M,
                   const std::vector<unsigned> &Vars);

/// Like packComponent, but reads through partition \p P with
/// Octagon::entry() semantics: pairs not related by \p P read as +inf
/// (0 on the true diagonal), so union-merged components pack correctly
/// from inputs that never materialized them. \p FullyInit short-cuts to
/// the pure-copy pack (every slot of a fully initialized buffer is
/// meaningful).
void packComponentEntry(double *Dst, const HalfDbm &M, const Partition &P,
                        bool FullyInit, const std::vector<unsigned> &Vars);

/// Scatters the block \p Src (as produced by packComponent) back to the
/// component's slots of \p M — the exact inverse copy of packComponent.
void scatterComponent(const double *Src, HalfDbm &M,
                      const std::vector<unsigned> &Vars);

/// Packs just the two stored rows of block-variable \p A (position in
/// \p Vars): Dst[0 .. 2A+1] = the component row of 2A, Dst[2A+2 ..
/// 4A+3] = the row of 2A+1. Returns the packed length 4(A+1). The
/// early-exit predicates (leq/equals) pack one row pair at a time so a
/// violation in the first rows costs one tiny pack + one kernel call,
/// preserving the pointwise legs' early-exit profile on misses.
std::size_t packRowPair(double *Dst, const HalfDbm &M,
                        const std::vector<unsigned> &Vars, std::size_t A);

/// Row-pair flavor of packComponentEntry: same trivia substitution,
/// two rows only. Returns the packed length 4(A+1).
std::size_t packRowPairEntry(double *Dst, const HalfDbm &M,
                             const Partition &P, bool FullyInit,
                             const std::vector<unsigned> &Vars, std::size_t A);

} // namespace optoct

#endif // OPTOCT_OCT_BLOCKED_LAYOUT_H
