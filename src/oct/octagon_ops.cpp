//===- oct/octagon_ops.cpp - Lattice operators of the Octagon domain -----===//
///
/// \file
/// meet / join / widening / narrowing / inclusion / equality (Section 4).
/// Each operator works on the submatrices induced by the independent
/// components: meet merges components (union of the connectivity
/// relations), join and widening intersect them (common refinement), so
/// only the relevant parts of the matrices are accessed (Fig. 4).
///
//===----------------------------------------------------------------------===//

#include "oct/config.h"
#include "oct/octagon.h"
#include "oct/vector_min.h"

#include <algorithm>
#include <cassert>

using namespace optoct;

namespace {

/// Applies \p Fn(I, J) to every stored (lower-triangle) full-DBM slot
/// whose variable pair lies inside \p Vars.
template <typename FnT>
void forEachComponentSlot(const std::vector<unsigned> &Vars, FnT Fn) {
  for (std::size_t A = 0; A != Vars.size(); ++A)
    for (std::size_t B = 0; B <= A; ++B) {
      unsigned Hi = Vars[A], Lo = Vars[B];
      for (unsigned R = 0; R != 2; ++R)
        for (unsigned S = 0; S != 2; ++S)
          Fn(2 * Hi + R, 2 * Lo + S);
    }
}

} // namespace

Octagon Octagon::meet(const Octagon &A, const Octagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  unsigned N = A.numVars();
  if (A.Empty || B.Empty)
    return makeBottom(N);
  if (A.P.empty() && !A.FullyInit)
    return B; // meet with Top
  if (B.P.empty() && !B.FullyInit)
    return A;

  Octagon R(N, PrivateTag{});
  R.P = Partition::unionMerge(A.P, B.P);

  if (A.FullyInit && B.FullyInit) {
    // Dense fast path (Table 1: meet with a Dense input yields Dense
    // with O(n^2) vectorized work over the packed buffer).
    R.M = A.M;
    minRows(R.M.data(), B.M.data(), R.M.size());
    R.FullyInit = true;
    R.NniExplicit = (A.P.isWhole() || B.P.isWhole())
                        ? R.M.size() // Section 4.1 over-approximation
                        : R.M.countFinite();
  } else {
    std::size_t Count = 0;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
        double VA = A.entry(I, J);
        double VB = B.entry(I, J);
        double V = VA < VB ? VA : VB;
        R.M.at(I, J) = V;
        Count += isFinite(V);
      });
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  }

  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

Octagon Octagon::join(Octagon &A, Octagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  unsigned N = A.numVars();
  A.close();
  B.close();
  if (A.Empty)
    return B;
  if (B.Empty)
    return A;
  if (A.P.empty() || B.P.empty())
    return makeTop(N); // join with Top is Top (Table 1)

  Octagon R(N, PrivateTag{});
  R.P = Partition::refine(A.P, B.P);

  if (A.FullyInit && B.FullyInit && A.P.isWhole() && B.P.isWhole()) {
    // Dense/Dense fast path: one vectorized max over the packed buffer.
    R.M = A.M;
    maxRows(R.M.data(), B.M.data(), R.M.size());
    R.FullyInit = true;
    R.NniExplicit = R.M.size(); // Section 4.1 over-approximation
  } else {
    // Only the submatrices of the *intersected* components are read and
    // written (Fig. 4); everything else is implicitly trivial. A pair
    // inside a refined component lies inside one component of *each*
    // input, so both buffers are initialized there and the raw reads
    // skip the per-entry partition lookups.
    std::size_t Count = 0;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
        double VA = A.M.at(I, J);
        double VB = B.M.at(I, J);
        double V = VA > VB ? VA : VB;
        R.M.at(I, J) = V;
        Count += isFinite(V);
      });
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  }

  // The pointwise max of two strongly closed DBMs is strongly closed.
  R.Closed = true;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  return R;
}

Octagon Octagon::widen(const Octagon &Old, Octagon &New) {
  static const std::vector<double> NoThresholds;
  return widenWithThresholds(Old, New, NoThresholds);
}

Octagon Octagon::widenWithThresholds(const Octagon &Old, Octagon &New,
                                     const std::vector<double> &Thresholds) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  assert(std::is_sorted(Thresholds.begin(), Thresholds.end()) &&
         "thresholds must be sorted ascending");
  unsigned N = Old.numVars();
  // Standard octagon widening: close the new argument for precision,
  // never the old one (termination).
  New.close();
  if (Old.Empty)
    return New;
  if (New.Empty)
    return Old;
  if (Old.P.empty() && !Old.FullyInit)
    return makeTop(N); // widening away from Top stays Top

  Octagon R(N, PrivateTag{});
  R.P = Partition::refine(Old.P, New.P);

  // Thresholds are variable-level bounds: unary DBM entries (which
  // encode 2x the variable bound) land on 2t, binary entries on t.
  std::vector<double> Doubled;
  Doubled.reserve(Thresholds.size());
  for (double T : Thresholds)
    Doubled.push_back(2 * T);
  auto widenEntry = [&](double VO, double VN, bool Unary) {
    if (VN <= VO)
      return VO; // stable: keep the old bound
    const std::vector<double> &Set = Unary ? Doubled : Thresholds;
    auto It = std::lower_bound(Set.begin(), Set.end(), VN);
    return It == Set.end() ? Infinity : *It;
  };

  // A bound survives iff it did not grow; growing bounds jump to the
  // next threshold or +inf. nni is counted exactly — widening is where
  // sparsity reappears during analysis (Fig. 7), so the count must be
  // real, not the dense over-approximation.
  // As in join, refined pairs are covered by both inputs' components,
  // so the raw buffer reads are valid and cheaper than entry().
  std::size_t Count = 0;
  for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
    forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
      double V =
          widenEntry(Old.M.at(I, J), New.M.at(I, J), I / 2 == J / 2);
      R.M.at(I, J) = V;
      Count += isFinite(V);
    });
  R.FullyInit = R.P.isWhole();
  R.NniExplicit = Count;
  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

Octagon Octagon::narrow(Octagon &Old, const Octagon &New) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  unsigned N = Old.numVars();
  Old.close();
  if (Old.Empty || New.Empty)
    return makeBottom(N);

  Octagon R(N, PrivateTag{});
  R.P = Partition::unionMerge(Old.P, New.P);

  // Standard narrowing: refine only the unbounded entries.
  std::size_t Count = 0;
  for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
    forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
      double VO = Old.entry(I, J);
      double V = isFinite(VO) ? VO : New.entry(I, J);
      R.M.at(I, J) = V;
      Count += isFinite(V);
    });
  R.FullyInit = R.P.isWhole();
  R.NniExplicit = Count;
  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

bool Octagon::leq(Octagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  if (Empty)
    return true;
  if (Other.Empty)
    return false;
  // gamma(this) ⊆ gamma(Other) iff every bound of Other is implied:
  // this*(i,j) <= Other(i,j). Entries of Other outside its components
  // are +inf and need no check, so only Other's submatrices are read.
  // (Other is deliberately not closed here: the test is sound either
  // way, and closing a stored widening iterate would endanger
  // termination.)
  for (std::size_t C = 0, E = Other.P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = Other.P.component(C);
    for (std::size_t A = 0; A != Vars.size(); ++A)
      for (std::size_t B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S) {
            unsigned I = 2 * Vars[A] + R, J = 2 * Vars[B] + S;
            if (entry(I, J) > Other.M.at(I, J))
              return false;
          }
  }
  // When Other is fully materialized but its partition lags behind (it
  // over-approximates), uncovered entries are still genuinely trivial,
  // so the component scan above remains complete.
  return true;
}

bool Octagon::equals(Octagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  Other.close();
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  // The strongly closed form is canonical for non-empty octagons.
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      if (entry(I, J) != Other.entry(I, J))
        return false;
  return true;
}
