//===- oct/octagon_ops.cpp - Lattice operators of the Octagon domain -----===//
///
/// \file
/// meet / join / widening / narrowing / inclusion / equality (Section 4).
/// Each operator works on the submatrices induced by the independent
/// components: meet merges components (union of the connectivity
/// relations), join and widening intersect them (common refinement), so
/// only the relevant parts of the matrices are accessed (Fig. 4).
///
/// All operators stream over contiguous packed half-DBM spans instead
/// of per-element coherence-indexed at() calls: row i stores columns
/// j = 0..(i|1) consecutively, so the Dense case is one flat pass over
/// the 2n(n+1) buffer. The Decomposed case uses the blocked component
/// layout (oct/blocked_layout.h): each component's sub-DBM is packed
/// into contiguous scratch, all components below the
/// octConfig().BlockedCutoffVars cutoff are laid end to end, and one
/// span-kernel dispatch covers the whole batch — k tiny components pay
/// one call, not k × rows × runs. Components at or above the cutoff
/// stream their row runs directly (walkComponentSpans), where the
/// kernel already amortizes and pack+scatter would only add traffic.
/// Union-merged partitions (meet, narrowing on partial inputs,
/// inclusion/equality against Decomposed receivers) pack through
/// entry()'s implicit-trivia semantics instead of falling back to
/// scalar element loops.
///
/// With octConfig().EnableVectorization off, every operator instead runs
/// the original pointwise implementation (dense copy + in-place min/max,
/// coherence-indexed at()/entry() loops elsewhere), kept verbatim and
/// pinned scalar: the ablation measures the whole optimization —
/// restructuring plus SIMD — against the code it replaced, and the
/// differential tests (tests/test_vector_ops.cpp, tests/test_blocked.cpp)
/// check both legs agree on every observable (DBM entries, nni,
/// partition, emptiness).
///
//===----------------------------------------------------------------------===//

#include "oct/blocked_layout.h"
#include "oct/config.h"
#include "oct/octagon.h"
#include "oct/vector_ops.h"

#include <algorithm>
#include <cassert>

using namespace optoct;

namespace {

/// Applies \p Fn(I, J) to every stored (lower-triangle) full-DBM slot
/// whose variable pair lies inside \p Vars. Scalar fallback iteration
/// for the paths that must go through entry()'s implicit trivia.
template <typename FnT>
void forEachComponentSlot(const std::vector<unsigned> &Vars, FnT Fn) {
  for (std::size_t A = 0; A != Vars.size(); ++A)
    for (std::size_t B = 0; B <= A; ++B) {
      unsigned Hi = Vars[A], Lo = Vars[B];
      for (unsigned R = 0; R != 2; ++R)
        for (unsigned S = 0; S != 2; ++S)
          Fn(2 * Hi + R, 2 * Lo + S);
    }
}

/// The pre-span-kernel element loops, preserved as the
/// EnableVectorization=off leg. OPTOCT_SCALAR_KERNEL keeps -O3 from
/// quietly re-vectorizing them, so the ablation baseline stays honest.
OPTOCT_SCALAR_KERNEL
void scalarMinRows(double *Dst, const double *Src, std::size_t Len) {
  for (std::size_t J = 0; J != Len; ++J)
    if (Src[J] < Dst[J])
      Dst[J] = Src[J];
}

OPTOCT_SCALAR_KERNEL
void scalarMaxRows(double *Dst, const double *Src, std::size_t Len) {
  for (std::size_t J = 0; J != Len; ++J)
    if (Src[J] > Dst[J])
      Dst[J] = Src[J];
}

OPTOCT_SCALAR_KERNEL
std::size_t scalarCountFinite(const double *P, std::size_t Len) {
  std::size_t Count = 0;
  for (std::size_t J = 0; J != Len; ++J)
    Count += isFinite(P[J]);
  return Count;
}

/// Join over one refined component, reading the raw buffers (both are
/// initialized inside a refined component) through the coherence index.
OPTOCT_SCALAR_KERNEL
std::size_t scalarMaxComponent(HalfDbm &RM, const HalfDbm &AM,
                               const HalfDbm &BM,
                               const std::vector<unsigned> &Vars) {
  std::size_t Count = 0;
  forEachComponentSlot(Vars, [&](unsigned I, unsigned J) {
    double VA = AM.at(I, J);
    double VB = BM.at(I, J);
    double V = VA > VB ? VA : VB;
    RM.at(I, J) = V;
    Count += isFinite(V);
  });
  return Count;
}

/// A maximal run of consecutive variables in a sorted component. The
/// run [First, First+Count) owns the contiguous packed columns
/// [2*First, 2*(First+Count)) of every stored row at or above it.
struct VarRun {
  unsigned First;
  unsigned Count;
};

void componentRuns(const std::vector<unsigned> &Vars,
                   std::vector<VarRun> &Runs) {
  Runs.clear();
  for (unsigned V : Vars) {
    if (!Runs.empty() && Runs.back().First + Runs.back().Count == V)
      ++Runs.back().Count;
    else
      Runs.push_back({V, 1});
  }
}

/// Streams the stored spans of one component: for each variable Hi of
/// \p Vars (ascending) and each of its extended rows I in {2Hi, 2Hi+1},
/// calls \p Fn(I, J0, Len) for every contiguous packed column span
/// relating Hi to the component's variables <= Hi — the complete runs
/// below Hi, then the partial run ending in Hi's own diagonal block.
/// \p Fn returns false to stop the walk (the early-exit predicates);
/// returns false iff stopped.
template <typename FnT>
bool walkComponentSpans(const std::vector<unsigned> &Vars,
                        const std::vector<VarRun> &Runs, FnT Fn) {
  std::size_t RunIdx = 0;
  unsigned InRun = 0; // variables of Runs[RunIdx] already walked
  for (unsigned Hi : Vars) {
    if (InRun == Runs[RunIdx].Count) {
      ++RunIdx;
      InRun = 0;
    }
    for (unsigned R = 0; R != 2; ++R) {
      unsigned I = 2 * Hi + R;
      for (std::size_t Q = 0; Q != RunIdx; ++Q)
        if (!Fn(I, 2 * Runs[Q].First, 2 * Runs[Q].Count))
          return false;
      // Partial current run, including Hi's 2-wide diagonal block.
      if (!Fn(I, 2 * Runs[RunIdx].First, 2 * InRun + 2))
        return false;
    }
    ++InRun;
  }
  return true;
}

/// Like walkComponentSpans, but reports the 2-wide diagonal-block span
/// (columns 2Hi, 2Hi+1 — Hi's unary bounds) through \p UnaryFn instead
/// of merging it into the last cross span. Widening needs the split:
/// unary entries encode 2x the variable bound and widen against the
/// doubled threshold set.
template <typename CrossFnT, typename UnaryFnT>
void walkComponentSpansSplit(const std::vector<unsigned> &Vars,
                             const std::vector<VarRun> &Runs, CrossFnT CrossFn,
                             UnaryFnT UnaryFn) {
  std::size_t RunIdx = 0;
  unsigned InRun = 0;
  for (unsigned Hi : Vars) {
    if (InRun == Runs[RunIdx].Count) {
      ++RunIdx;
      InRun = 0;
    }
    for (unsigned R = 0; R != 2; ++R) {
      unsigned I = 2 * Hi + R;
      for (std::size_t Q = 0; Q != RunIdx; ++Q)
        CrossFn(I, 2 * Runs[Q].First, 2 * Runs[Q].Count);
      if (InRun != 0)
        CrossFn(I, 2 * Runs[RunIdx].First, 2 * InRun);
      UnaryFn(I, 2 * Hi);
    }
    ++InRun;
  }
}

/// The components one operator call batches through the blocked layout:
/// their blocks are packed end to end in the per-thread scratch and a
/// single kernel dispatch covers Total doubles.
struct BlockBatch {
  std::vector<const std::vector<unsigned> *> Comps;
  std::size_t Total = 0;

  void add(const std::vector<unsigned> &Vars) {
    Comps.push_back(&Vars);
    Total += blockSize(Vars.size());
  }
  bool empty() const { return Comps.empty(); }
};

/// Scatters the batched result blocks in \p S.R back into \p RM.
void scatterBatch(const BlockBatch &Batch, const BlockScratch &S, HalfDbm &RM) {
  std::size_t Off = 0;
  for (const std::vector<unsigned> *Vars : Batch.Comps) {
    scatterComponent(S.R.data() + Off, RM, *Vars);
    Off += blockSize(Vars->size());
  }
}

/// The per-element widening rule (identical to the kernels'): keep a
/// stable bound, jump a grown one to the smallest dominating threshold
/// of the sorted table, +inf when none dominates.
double widenBound(double VO, double VN, const double *Thr, std::size_t ThrN) {
  if (VN <= VO)
    return VO;
  const double *It = std::lower_bound(Thr, Thr + ThrN, VN);
  return It == Thr + ThrN ? Infinity : *It;
}

} // namespace

Octagon Octagon::meet(const Octagon &A, const Octagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  unsigned N = A.numVars();
  if (A.Empty || B.Empty)
    return makeBottom(N);
  if (A.P.empty() && !A.FullyInit)
    return B; // meet with Top
  if (B.P.empty() && !B.FullyInit)
    return A;

  Octagon R(N, PrivateTag{});
  R.P = Partition::unionMerge(A.P, B.P);

  if (A.FullyInit && B.FullyInit) {
    // Dense fast path (Table 1: meet with a Dense input yields Dense
    // with O(n^2) vectorized work over the packed buffer). Two-source
    // kernels write the result directly — no preparatory buffer copy.
    R.FullyInit = true;
    if (!octConfig().EnableVectorization) {
      // Ablation leg: the original copy + in-place pointwise min, plus
      // a separate counting scan where the count must be exact.
      R.M = A.M;
      scalarMinRows(R.M.data(), B.M.data(), R.M.size());
      R.NniExplicit = (A.P.isWhole() || B.P.isWhole())
                          ? R.M.size() // Section 4.1 over-approximation
                          : scalarCountFinite(R.M.data(), R.M.size());
    } else if (A.P.isWhole() || B.P.isWhole()) {
      minSpan(R.M.data(), A.M.data(), B.M.data(), R.M.size());
      R.NniExplicit = R.M.size(); // Section 4.1 over-approximation
    } else {
      // The same pass also yields the exact count (no re-scan).
      R.NniExplicit =
          minSpanCount(R.M.data(), A.M.data(), B.M.data(), R.M.size());
    }
  } else if (octConfig().EnableVectorization) {
    // The union-merged partition can relate pairs that neither input
    // materialized, so the packs read through entry()'s implicit trivia
    // (pure span copies whenever a component sits inside one block of
    // an input — the common case of agreeing partitions). All
    // components batch into one kernel dispatch regardless of size:
    // the alternative here is the per-element entry() loop, not a
    // direct span walk.
    BlockBatch Batch;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      Batch.add(R.P.component(C));
    std::size_t Count = 0;
    if (!Batch.empty()) {
      BlockScratch &S = blockScratch();
      S.ensure(Batch.Total);
      std::size_t Off = 0;
      for (const std::vector<unsigned> *Vars : Batch.Comps) {
        packComponentEntry(S.A.data() + Off, A.M, A.P, A.FullyInit, *Vars);
        packComponentEntry(S.B.data() + Off, B.M, B.P, B.FullyInit, *Vars);
        Off += blockSize(Vars->size());
      }
      Count = minSpanCount(S.R.data(), S.A.data(), S.B.data(), Batch.Total);
      scatterBatch(Batch, S, R.M);
    }
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  } else {
    // Ablation leg: per-element reads through entry()'s implicit
    // trivia, as in the original operator.
    std::size_t Count = 0;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
        double VA = A.entry(I, J);
        double VB = B.entry(I, J);
        double V = VA < VB ? VA : VB;
        R.M.at(I, J) = V;
        Count += isFinite(V);
      });
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  }

  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

Octagon Octagon::join(Octagon &A, Octagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  unsigned N = A.numVars();
  A.close();
  B.close();
  if (A.Empty)
    return B;
  if (B.Empty)
    return A;
  if (A.P.empty() || B.P.empty())
    return makeTop(N); // join with Top is Top (Table 1)

  Octagon R(N, PrivateTag{});
  R.P = Partition::refine(A.P, B.P);

  if (A.FullyInit && B.FullyInit && A.P.isWhole() && B.P.isWhole()) {
    // Dense/Dense fast path: one flat vectorized max over the packed
    // buffers, written straight into the result. The ablation leg keeps
    // the original copy + in-place pointwise max.
    if (octConfig().EnableVectorization) {
      maxSpan(R.M.data(), A.M.data(), B.M.data(), R.M.size());
    } else {
      R.M = A.M;
      scalarMaxRows(R.M.data(), B.M.data(), R.M.size());
    }
    R.FullyInit = true;
    R.NniExplicit = R.M.size(); // Section 4.1 over-approximation
  } else if (!octConfig().EnableVectorization) {
    // Ablation leg: the original coherence-indexed loop over each
    // refined component.
    std::size_t Count = 0;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      Count += scalarMaxComponent(R.M, A.M, B.M, R.P.component(C));
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  } else {
    // Only the submatrices of the *intersected* components are read and
    // written (Fig. 4); everything else is implicitly trivial. A pair
    // inside a refined component lies inside one component of *each*
    // input, so both buffers are initialized there and the pure-copy
    // pack / direct row streaming are valid. The kernels count finite
    // lanes as they go, keeping nni exact without a second pass.
    std::size_t Count = 0;
    std::vector<VarRun> Runs;
    const unsigned Cutoff = octConfig().BlockedCutoffVars;
    BlockBatch Batch;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C) {
      const std::vector<unsigned> &Vars = R.P.component(C);
      if (Vars.size() >= Cutoff) {
        componentRuns(Vars, Runs);
        walkComponentSpans(Vars, Runs,
                           [&](unsigned I, unsigned J0, unsigned Len) {
                             Count += maxSpanCount(R.M.row(I) + J0,
                                                   A.M.row(I) + J0,
                                                   B.M.row(I) + J0, Len);
                             return true;
                           });
      } else {
        Batch.add(Vars);
      }
    }
    if (!Batch.empty()) {
      BlockScratch &S = blockScratch();
      S.ensure(Batch.Total);
      std::size_t Off = 0;
      for (const std::vector<unsigned> *Vars : Batch.Comps) {
        packComponent(S.A.data() + Off, A.M, *Vars);
        packComponent(S.B.data() + Off, B.M, *Vars);
        Off += blockSize(Vars->size());
      }
      Count += maxSpanCount(S.R.data(), S.A.data(), S.B.data(), Batch.Total);
      scatterBatch(Batch, S, R.M);
    }
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  }

  // The pointwise max of two strongly closed DBMs is strongly closed.
  R.Closed = true;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  return R;
}

Octagon Octagon::widen(const Octagon &Old, Octagon &New) {
  static const std::vector<double> NoThresholds;
  return widenWithThresholds(Old, New, NoThresholds);
}

Octagon Octagon::widenWithThresholds(const Octagon &Old, Octagon &New,
                                     const std::vector<double> &Thresholds) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  assert(std::is_sorted(Thresholds.begin(), Thresholds.end()) &&
         "thresholds must be sorted ascending");
  unsigned N = Old.numVars();
  // Standard octagon widening: close the new argument for precision,
  // never the old one (termination).
  New.close();
  if (Old.Empty)
    return New;
  if (New.Empty)
    return Old;
  if (Old.P.empty() && !Old.FullyInit)
    return makeTop(N); // widening away from Top stays Top

  Octagon R(N, PrivateTag{});
  R.P = Partition::refine(Old.P, New.P);

  // Thresholds are variable-level bounds: unary DBM entries (which
  // encode 2x the variable bound) land on 2t, binary entries on t. Both
  // sets are prepared once per call — the kernels scan them only for
  // entries that actually grew.
  std::vector<double> Doubled;
  Doubled.reserve(Thresholds.size());
  for (double T : Thresholds)
    Doubled.push_back(2 * T);
  const double *BinThr = Thresholds.data();
  const std::size_t BinN = Thresholds.size();
  const double *UnThr = Doubled.data();
  const std::size_t UnN = Doubled.size();

  // A bound survives iff it did not grow; growing bounds jump to the
  // next threshold or +inf. nni is counted exactly — widening is where
  // sparsity reappears during analysis (Fig. 7), so the count must be
  // real, not the dense over-approximation; the kernels return it from
  // the same pass. As in join, refined pairs are covered by both
  // inputs' components, so the raw row spans are valid.
  std::size_t Count = 0;
  if (!octConfig().EnableVectorization) {
    // Ablation leg: the original per-element widening rule over the
    // refined components (same hoisted threshold prep; the binary
    // search still runs only for entries that actually grew).
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
        double VO = Old.M.at(I, J);
        double VN = New.M.at(I, J);
        bool Unary = I / 2 == J / 2;
        const double *Thr = Unary ? UnThr : BinThr;
        std::size_t ThrN = Unary ? UnN : BinN;
        double V;
        if (VN <= VO) {
          V = VO; // stable: keep the old bound
        } else {
          const double *It = std::lower_bound(Thr, Thr + ThrN, VN);
          V = It == Thr + ThrN ? Infinity : *It;
        }
        R.M.at(I, J) = V;
        Count += isFinite(V);
      });
  } else if (BinN == 0 && R.P.isWhole()) {
    // Dense fast path: with no thresholds the unary and binary rules
    // coincide, so the whole packed buffer is a single span (a whole
    // refined partition means both inputs' buffers are fully
    // meaningful).
    Count = widenSpanCount(R.M.data(), Old.M.data(), New.M.data(),
                           R.M.size(), nullptr, 0);
  } else {
    std::vector<VarRun> Runs;
    const unsigned Cutoff = octConfig().BlockedCutoffVars;
    BlockBatch Batch;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C) {
      const std::vector<unsigned> &Vars = R.P.component(C);
      if (Vars.size() >= Cutoff) {
        componentRuns(Vars, Runs);
        walkComponentSpansSplit(
            Vars, Runs,
            [&](unsigned I, unsigned J0, unsigned Len) {
              Count += widenSpanCount(R.M.row(I) + J0, Old.M.row(I) + J0,
                                      New.M.row(I) + J0, Len, BinThr, BinN);
            },
            [&](unsigned I, unsigned J0) {
              Count += widenSpanCount(R.M.row(I) + J0, Old.M.row(I) + J0,
                                      New.M.row(I) + J0, 2, UnThr, UnN);
            });
      } else {
        Batch.add(Vars);
      }
    }
    if (!Batch.empty()) {
      // One kernel dispatch widens every small component under the
      // binary thresholds; the unary diagonal-block slots (two per
      // variable, which must widen against the doubled set) are then
      // patched with the identical scalar rule, adjusting the finite
      // count by the delta. With no thresholds the two rules coincide
      // and the patch pass is skipped.
      BlockScratch &S = blockScratch();
      S.ensure(Batch.Total);
      std::size_t Off = 0;
      for (const std::vector<unsigned> *Vars : Batch.Comps) {
        packComponent(S.A.data() + Off, Old.M, *Vars);
        packComponent(S.B.data() + Off, New.M, *Vars);
        Off += blockSize(Vars->size());
      }
      Count += widenSpanCount(S.R.data(), S.A.data(), S.B.data(), Batch.Total,
                              BinThr, BinN);
      if (BinN != 0) {
        Off = 0;
        for (const std::vector<unsigned> *Vars : Batch.Comps) {
          for (std::size_t A = 0, NumV = Vars->size(); A != NumV; ++A) {
            unsigned UpRow = 2 * static_cast<unsigned>(A);
            const std::size_t Slots[2] = {
                Off + HalfDbm::index(UpRow, UpRow + 1),
                Off + HalfDbm::index(UpRow + 1, UpRow)};
            for (std::size_t Idx : Slots) {
              double V = widenBound(S.A[Idx], S.B[Idx], UnThr, UnN);
              double Cur = S.R[Idx];
              if (V != Cur) {
                Count -= isFinite(Cur);
                Count += isFinite(V);
                S.R[Idx] = V;
              }
            }
          }
          Off += blockSize(Vars->size());
        }
      }
      scatterBatch(Batch, S, R.M);
    }
  }
  R.FullyInit = R.P.isWhole();
  R.NniExplicit = Count;
  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

Octagon Octagon::narrow(Octagon &Old, const Octagon &New) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  unsigned N = Old.numVars();
  Old.close();
  if (Old.Empty || New.Empty)
    return makeBottom(N);

  Octagon R(N, PrivateTag{});
  R.P = Partition::unionMerge(Old.P, New.P);

  // Standard narrowing: refine only the unbounded entries.
  if (Old.FullyInit && New.FullyInit && octConfig().EnableVectorization &&
      R.P.isWhole()) {
    // Both buffers fully meaningful and one component covering every
    // variable: one flat select over the packed storage materializes
    // the result and counts it in the same pass.
    R.NniExplicit =
        narrowSpanCount(R.M.data(), Old.M.data(), New.M.data(), R.M.size());
    R.FullyInit = true;
  } else if (octConfig().EnableVectorization) {
    // Fragmented or partial inputs: the union-merged components pack
    // through entry()'s implicit trivia (pure copies when fully
    // initialized or block-aligned) and one kernel dispatch covers the
    // whole batch, as in meet.
    BlockBatch Batch;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      Batch.add(R.P.component(C));
    std::size_t Count = 0;
    if (!Batch.empty()) {
      BlockScratch &S = blockScratch();
      S.ensure(Batch.Total);
      std::size_t Off = 0;
      for (const std::vector<unsigned> *Vars : Batch.Comps) {
        packComponentEntry(S.A.data() + Off, Old.M, Old.P, Old.FullyInit,
                           *Vars);
        packComponentEntry(S.B.data() + Off, New.M, New.P, New.FullyInit,
                           *Vars);
        Off += blockSize(Vars->size());
      }
      Count = narrowSpanCount(S.R.data(), S.A.data(), S.B.data(), Batch.Total);
      scatterBatch(Batch, S, R.M);
    }
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  } else {
    std::size_t Count = 0;
    for (std::size_t C = 0, E = R.P.numComponents(); C != E; ++C)
      forEachComponentSlot(R.P.component(C), [&](unsigned I, unsigned J) {
        double VO = Old.entry(I, J);
        double V = isFinite(VO) ? VO : New.entry(I, J);
        R.M.at(I, J) = V;
        Count += isFinite(V);
      });
    R.FullyInit = R.P.isWhole();
    R.NniExplicit = Count;
  }
  R.Closed = false;
  R.Kind = R.P.empty()    ? DbmKind::Top
           : R.P.isWhole() ? DbmKind::Dense
                           : DbmKind::Decomposed;
  if (R.Kind == DbmKind::Top)
    R.Closed = true;
  return R;
}

bool Octagon::leq(Octagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  if (Empty)
    return true;
  if (Other.Empty)
    return false;
  // gamma(this) ⊆ gamma(Other) iff every bound of Other is implied:
  // this*(i,j) <= Other(i,j). Entries of Other outside its components
  // are +inf and need no check, so only Other's submatrices are read.
  // (Other is deliberately not closed here: the test is sound either
  // way, and closing a stored widening iterate would endanger
  // termination.)
  if (octConfig().EnableVectorization && FullyInit && Other.FullyInit) {
    // Both buffers fully meaningful: one flat early-exit predicate over
    // the packed storage. Other's slots outside its components hold
    // materialized trivial values, which cannot fabricate a violation
    // (anything <= +inf; both diagonals are 0).
    return spanLeq(M.data(), Other.M.data(), M.size());
  }
  for (std::size_t C = 0, E = Other.P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = Other.P.component(C);
    if (octConfig().EnableVectorization) {
      // Pack and compare one row pair at a time: this side through
      // entry()'s implicit trivia (the receiver's partition may split
      // Other's component), Other with pure copies (its own component
      // rows are materialized by definition). Flushing per row pair
      // keeps the pointwise leg's early-exit profile — a violation in
      // the first rows costs one tiny pack and one kernel call, not a
      // whole-component gather.
      BlockScratch &S = blockScratch();
      S.ensure(4 * Vars.size());
      for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
        std::size_t Len = packRowPairEntry(S.A.data(), M, P, FullyInit, Vars, A);
        packRowPair(S.B.data(), Other.M, Vars, A);
        if (!spanLeq(S.A.data(), S.B.data(), Len))
          return false;
      }
      continue;
    }
    // Ablation leg: per-element reads through entry()'s implicit
    // trivia, as in the original operator.
    for (std::size_t A = 0; A != Vars.size(); ++A)
      for (std::size_t B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S) {
            unsigned I = 2 * Vars[A] + R, J = 2 * Vars[B] + S;
            if (entry(I, J) > Other.M.at(I, J))
              return false;
          }
  }
  // When Other is fully materialized but its partition lags behind (it
  // over-approximates), uncovered entries are still genuinely trivial,
  // so the component scan above remains complete.
  return true;
}

bool Octagon::equals(Octagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  Other.close();
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  // The strongly closed form is canonical for non-empty octagons.
  if (octConfig().EnableVectorization && FullyInit && Other.FullyInit) {
    // Closure materialized both buffers (including the trivial slots
    // outside their exact partitions), so canonical equality is one
    // flat early-exit compare of the packed storage.
    return spanEq(M.data(), Other.M.data(), M.size());
  }
  if (octConfig().EnableVectorization) {
    // Any non-trivial entry of either side lies inside a component of
    // its own partition, so two one-sided sweeps cover every pair that
    // could differ: first all pairs inside Other's components (the
    // receiver read through entry()'s implicit trivia), then pairs
    // inside this side's components — skipping blocks the first sweep
    // already verified in full because they exist identically in
    // Other's partition (the common fixpoint-iterate case). Pairs
    // covered by neither partition are trivial on both sides. No
    // merged partition is materialized, so equality stays
    // allocation-free, and flushing one row pair per kernel call keeps
    // the pointwise leg's early-exit profile on unequal inputs.
    BlockScratch &S = blockScratch();
    for (std::size_t C = 0, E = Other.P.numComponents(); C != E; ++C) {
      const std::vector<unsigned> &Vars = Other.P.component(C);
      S.ensure(4 * Vars.size());
      for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
        std::size_t Len = packRowPairEntry(S.A.data(), M, P, FullyInit, Vars, A);
        packRowPair(S.B.data(), Other.M, Vars, A);
        if (!spanEq(S.A.data(), S.B.data(), Len))
          return false;
      }
    }
    for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
      const std::vector<unsigned> &Vars = P.component(C);
      int CB = Other.P.componentOf(Vars[0]);
      if (CB >= 0 && Other.P.component(static_cast<std::size_t>(CB)) == Vars)
        continue;
      S.ensure(4 * Vars.size());
      for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
        std::size_t Len = packRowPair(S.A.data(), M, Vars, A);
        packRowPairEntry(S.B.data(), Other.M, Other.P, Other.FullyInit, Vars,
                         A);
        if (!spanEq(S.A.data(), S.B.data(), Len))
          return false;
      }
    }
    return true;
  }
  // Ablation leg: the original full coherence scan through entry().
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      if (entry(I, J) != Other.entry(I, J))
        return false;
  return true;
}
