//===- oct/simd_kernels_avx2.cpp - 256-bit AVX2 kernel tier --------------===//
///
/// \file
/// The AVX2 tier of the runtime-dispatched kernel table: the 256-bit
/// intrinsic bodies of oct/vector_ops.h and oct/vector_min.h, compiled
/// with function target attributes instead of a global -mavx2, so a
/// portable (OPTOCT_NATIVE=OFF) build still carries them and
/// simd_dispatch.cpp can select them at startup on any AVX2 machine.
///
/// The widening kernel replaces the old per-lane std::lower_bound
/// resolution with a branchless descending blend over the (small,
/// sorted) threshold table: iterating thresholds from largest to
/// smallest and overwriting the accumulator whenever Thr[t] >= New
/// leaves exactly the smallest dominating threshold — the
/// std::lower_bound result — in every lane, with no per-lane branches.
/// This is what lifts dense widen_thr from ~1.8x to >3x (EXPERIMENTS.md,
/// "Closing the decomposed gap").
///
//===----------------------------------------------------------------------===//

#include "oct/simd_kernels.h"
#include "oct/value.h"

#if OPTOCT_SIMD_X86

#include <algorithm>
#include <immintrin.h>

#define OPTOCT_TARGET_AVX2 __attribute__((target("avx2")))

namespace optoct {
namespace {

/// Above this threshold-table size the O(ThrN) branchless scan loses to
/// a per-lane binary search. Analysis threshold sets are tiny (the
/// bench uses 6); this is a safety valve, not a tuning knob.
constexpr std::size_t BranchlessThrMax = 32;

/// Number of lanes of \p V holding a finite bound (!= +inf; matches
/// isFinite, which deliberately counts -inf and NaN as "finite").
OPTOCT_TARGET_AVX2
inline int finiteLanes(__m256d V) {
  __m256d Inf = _mm256_set1_pd(Infinity);
  return __builtin_popcount(
      _mm256_movemask_pd(_mm256_cmp_pd(V, Inf, _CMP_NEQ_UQ)));
}

OPTOCT_TARGET_AVX2
void maxSpanAvx2(double *Dst, const double *A, const double *B,
                 std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    _mm256_storeu_pd(Dst + J, _mm256_max_pd(VA, VB));
  }
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    // VB on ties, like MAXPD, so tail and vector body agree bitwise.
    Dst[J] = VA > VB ? VA : VB;
  }
}

OPTOCT_TARGET_AVX2
void minSpanAvx2(double *Dst, const double *A, const double *B,
                 std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    _mm256_storeu_pd(Dst + J, _mm256_min_pd(VA, VB));
  }
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    Dst[J] = VA < VB ? VA : VB;
  }
}

OPTOCT_TARGET_AVX2
std::size_t maxSpanCountAvx2(double *Dst, const double *A, const double *B,
                             std::size_t Len) {
  std::size_t J = 0, Count = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    __m256d D = _mm256_max_pd(VA, VB);
    _mm256_storeu_pd(Dst + J, D);
    Count += finiteLanes(D);
  }
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA > VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_TARGET_AVX2
std::size_t minSpanCountAvx2(double *Dst, const double *A, const double *B,
                             std::size_t Len) {
  std::size_t J = 0, Count = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    __m256d D = _mm256_min_pd(VA, VB);
    _mm256_storeu_pd(Dst + J, D);
    Count += finiteLanes(D);
  }
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA < VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_TARGET_AVX2
std::size_t narrowSpanCountAvx2(double *Dst, const double *OldS,
                                const double *NewS, std::size_t Len) {
  std::size_t J = 0, Count = 0;
  __m256d Inf = _mm256_set1_pd(Infinity);
  for (; J + 4 <= Len; J += 4) {
    __m256d VO = _mm256_loadu_pd(OldS + J);
    __m256d VN = _mm256_loadu_pd(NewS + J);
    __m256d FiniteOld = _mm256_cmp_pd(VO, Inf, _CMP_NEQ_UQ);
    __m256d D = _mm256_blendv_pd(VN, VO, FiniteOld);
    _mm256_storeu_pd(Dst + J, D);
    Count += finiteLanes(D);
  }
  for (; J != Len; ++J) {
    double VO = OldS[J];
    double V = isFinite(VO) ? VO : NewS[J];
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_TARGET_AVX2
std::size_t widenSpanCountAvx2(double *Dst, const double *OldS,
                               const double *NewS, std::size_t Len,
                               const double *Thr, std::size_t ThrN) {
  std::size_t J = 0, Count = 0;
  __m256d Inf = _mm256_set1_pd(Infinity);
  for (; J + 4 <= Len; J += 4) {
    __m256d VO = _mm256_loadu_pd(OldS + J);
    __m256d VN = _mm256_loadu_pd(NewS + J);
    __m256d Stable = _mm256_cmp_pd(VN, VO, _CMP_LE_OQ);
    __m256d D;
    if (ThrN == 0 || _mm256_movemask_pd(Stable) == 0xF) {
      D = _mm256_blendv_pd(Inf, VO, Stable);
    } else if (ThrN <= BranchlessThrMax) {
      // Branchless smallest-dominating-threshold: scan the sorted table
      // from largest to smallest, overwriting wherever Thr[T] >= New.
      // The last write per lane is the smallest such threshold — the
      // std::lower_bound result, bitwise — and lanes no threshold
      // dominates keep +inf.
      __m256d Acc = Inf;
      for (std::size_t T = ThrN; T-- != 0;) {
        __m256d Tv = _mm256_set1_pd(Thr[T]);
        Acc = _mm256_blendv_pd(Acc, Tv, _mm256_cmp_pd(Tv, VN, _CMP_GE_OQ));
      }
      D = _mm256_blendv_pd(Acc, VO, Stable);
    } else {
      // Oversized threshold table: resolve the block's lanes with the
      // scalar rule (identical to the tail below).
      for (std::size_t K = 0; K != 4; ++K) {
        double VOk = OldS[J + K], VNk = NewS[J + K];
        double V;
        if (VNk <= VOk) {
          V = VOk;
        } else {
          const double *It = std::lower_bound(Thr, Thr + ThrN, VNk);
          V = It == Thr + ThrN ? Infinity : *It;
        }
        Dst[J + K] = V;
        Count += isFinite(V);
      }
      continue;
    }
    _mm256_storeu_pd(Dst + J, D);
    Count += finiteLanes(D);
  }
  for (; J != Len; ++J) {
    double VO = OldS[J], VN = NewS[J];
    double V;
    if (VN <= VO) {
      V = VO;
    } else if (ThrN == 0) {
      V = Infinity;
    } else {
      const double *It = std::lower_bound(Thr, Thr + ThrN, VN);
      V = It == Thr + ThrN ? Infinity : *It;
    }
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_TARGET_AVX2
bool spanLeqAvx2(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    if (_mm256_movemask_pd(_mm256_cmp_pd(VA, VB, _CMP_GT_OQ)) != 0)
      return false;
  }
  for (; J != Len; ++J)
    if (A[J] > B[J])
      return false;
  return true;
}

OPTOCT_TARGET_AVX2
bool spanEqAvx2(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d VA = _mm256_loadu_pd(A + J);
    __m256d VB = _mm256_loadu_pd(B + J);
    if (_mm256_movemask_pd(_mm256_cmp_pd(VA, VB, _CMP_NEQ_UQ)) != 0)
      return false;
  }
  for (; J != Len; ++J)
    if (A[J] != B[J])
      return false;
  return true;
}

OPTOCT_TARGET_AVX2
void minPlusRow2Avx2(double *Dst, const double *RowA, double A,
                     const double *RowB, double B, std::size_t Len) {
  std::size_t J = 0;
  __m256d VA = _mm256_set1_pd(A);
  __m256d VB = _mm256_set1_pd(B);
  for (; J + 4 <= Len; J += 4) {
    __m256d D = _mm256_loadu_pd(Dst + J);
    __m256d TA = _mm256_add_pd(VA, _mm256_loadu_pd(RowA + J));
    __m256d TB = _mm256_add_pd(VB, _mm256_loadu_pd(RowB + J));
    D = _mm256_min_pd(D, _mm256_min_pd(TA, TB));
    _mm256_storeu_pd(Dst + J, D);
  }
  for (; J != Len; ++J) {
    double T1 = A + RowA[J];
    double T2 = B + RowB[J];
    double T = T1 < T2 ? T1 : T2;
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_TARGET_AVX2
void minPlusRow1Avx2(double *Dst, const double *RowA, double A,
                     std::size_t Len) {
  std::size_t J = 0;
  __m256d VA = _mm256_set1_pd(A);
  for (; J + 4 <= Len; J += 4) {
    __m256d D = _mm256_loadu_pd(Dst + J);
    __m256d T = _mm256_add_pd(VA, _mm256_loadu_pd(RowA + J));
    _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, T));
  }
  for (; J != Len; ++J) {
    double T = A + RowA[J];
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_TARGET_AVX2
void strengthenRowAvx2(double *Dst, const double *T, double Di,
                       std::size_t Len) {
  std::size_t J = 0;
  __m256d VD = _mm256_set1_pd(Di);
  __m256d Half = _mm256_set1_pd(0.5);
  for (; J + 4 <= Len; J += 4) {
    __m256d S = _mm256_mul_pd(_mm256_add_pd(VD, _mm256_loadu_pd(T + J)), Half);
    __m256d D = _mm256_loadu_pd(Dst + J);
    _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, S));
  }
  for (; J != Len; ++J) {
    double S = (Di + T[J]) * 0.5;
    if (S < Dst[J])
      Dst[J] = S;
  }
}

OPTOCT_TARGET_AVX2
void minRowsAvx2(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d D = _mm256_loadu_pd(Dst + J);
    __m256d S = _mm256_loadu_pd(Src + J);
    _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, S));
  }
  for (; J != Len; ++J)
    if (Src[J] < Dst[J])
      Dst[J] = Src[J];
}

OPTOCT_TARGET_AVX2
void maxRowsAvx2(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 4 <= Len; J += 4) {
    __m256d D = _mm256_loadu_pd(Dst + J);
    __m256d S = _mm256_loadu_pd(Src + J);
    _mm256_storeu_pd(Dst + J, _mm256_max_pd(D, S));
  }
  for (; J != Len; ++J)
    if (Src[J] > Dst[J])
      Dst[J] = Src[J];
}

} // namespace

const SpanKernels SpanKernelsAvx2 = {
    "avx2",
    maxSpanAvx2,
    minSpanAvx2,
    maxSpanCountAvx2,
    minSpanCountAvx2,
    narrowSpanCountAvx2,
    widenSpanCountAvx2,
    spanLeqAvx2,
    spanEqAvx2,
    minPlusRow2Avx2,
    minPlusRow1Avx2,
    strengthenRowAvx2,
    minRowsAvx2,
    maxRowsAvx2,
};

} // namespace optoct

#endif // OPTOCT_SIMD_X86
