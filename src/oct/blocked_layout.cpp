//===- oct/blocked_layout.cpp - Contiguous per-component sub-DBMs --------===//

#include "oct/blocked_layout.h"

#include <cstring>

using namespace optoct;

BlockScratch &optoct::blockScratch() {
  static thread_local BlockScratch S;
  return S;
}

void optoct::reserveBlockScratch(unsigned NumVars) {
  blockScratch().ensure(HalfDbm::matSize(NumVars));
}

/// Both rows of source variable Hi = Vars[A] copy the same column
/// layout: for each maximal chunk of consecutive component variables
/// Vars[B0..] at or below A, source columns [2*Vars[B0], ...) are one
/// contiguous span mapping to destination columns [2*B0, ...). The
/// chunk containing A itself ends with Hi's 2-wide diagonal block,
/// whose columns 2*Hi and 2*Hi+1 are stored in both of Hi's rows — so
/// every chunk uniformly contributes 2*chunkVars columns and the row's
/// spans sum to its full 2*A+2 stored entries.
void optoct::packComponent(double *Dst, const HalfDbm &M,
                           const std::vector<unsigned> &Vars) {
  for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
    unsigned Hi = Vars[A];
    const double *Src0 = M.row(2 * Hi);
    const double *Src1 = M.row(2 * Hi + 1);
    double *Dst0 = Dst + HalfDbm::index(2 * static_cast<unsigned>(A), 0);
    double *Dst1 = Dst + HalfDbm::index(2 * static_cast<unsigned>(A) + 1, 0);
    std::size_t Bi = 0;
    while (Bi <= A) {
      std::size_t B0 = Bi;
      unsigned First = Vars[B0];
      do
        ++Bi;
      while (Bi <= A && Vars[Bi] == Vars[Bi - 1] + 1);
      std::size_t Bytes = 2 * (Bi - B0) * sizeof(double);
      std::memcpy(Dst0 + 2 * B0, Src0 + 2 * First, Bytes);
      std::memcpy(Dst1 + 2 * B0, Src1 + 2 * First, Bytes);
    }
  }
}

void optoct::packComponentEntry(double *Dst, const HalfDbm &M,
                                const Partition &P, bool FullyInit,
                                const std::vector<unsigned> &Vars) {
  if (FullyInit) {
    packComponent(Dst, M, Vars);
    return;
  }
  // Common case: the whole component lies inside one source block (the
  // merged partition merely renamed it), so every pair is materialized
  // and the span copy applies. Stored diagonals inside covered
  // components are 0 for non-empty octagons, matching entry().
  int C0 = P.componentOf(Vars[0]);
  bool SingleBlock = C0 >= 0;
  for (std::size_t A = 1, NumV = Vars.size(); SingleBlock && A != NumV; ++A)
    SingleBlock = P.componentOf(Vars[A]) == C0;
  if (SingleBlock) {
    packComponent(Dst, M, Vars);
    return;
  }
  // General case: the union-merged component straddles source blocks
  // (or uncovered variables); substitute implicit trivia exactly as
  // Octagon::entry() would.
  for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
    unsigned Hi = Vars[A];
    int CA = P.componentOf(Hi);
    double *Dst0 = Dst + HalfDbm::index(2 * static_cast<unsigned>(A), 0);
    double *Dst1 = Dst + HalfDbm::index(2 * static_cast<unsigned>(A) + 1, 0);
    for (std::size_t B = 0; B != A; ++B) {
      unsigned Lo = Vars[B];
      if (CA >= 0 && P.componentOf(Lo) == CA) {
        Dst0[2 * B] = M.at(2 * Hi, 2 * Lo);
        Dst0[2 * B + 1] = M.at(2 * Hi, 2 * Lo + 1);
        Dst1[2 * B] = M.at(2 * Hi + 1, 2 * Lo);
        Dst1[2 * B + 1] = M.at(2 * Hi + 1, 2 * Lo + 1);
      } else {
        Dst0[2 * B] = Infinity;
        Dst0[2 * B + 1] = Infinity;
        Dst1[2 * B] = Infinity;
        Dst1[2 * B + 1] = Infinity;
      }
    }
    // Hi's diagonal block: true diagonal entries are 0 by definition;
    // the unary bounds are stored only when Hi is covered.
    Dst0[2 * A] = 0.0;
    Dst1[2 * A + 1] = 0.0;
    if (CA >= 0) {
      Dst0[2 * A + 1] = M.at(2 * Hi, 2 * Hi + 1);
      Dst1[2 * A] = M.at(2 * Hi + 1, 2 * Hi);
    } else {
      Dst0[2 * A + 1] = Infinity;
      Dst1[2 * A] = Infinity;
    }
  }
}

std::size_t optoct::packRowPair(double *Dst, const HalfDbm &M,
                                const std::vector<unsigned> &Vars,
                                std::size_t A) {
  unsigned Hi = Vars[A];
  const double *Src0 = M.row(2 * Hi);
  const double *Src1 = M.row(2 * Hi + 1);
  double *Dst0 = Dst;
  double *Dst1 = Dst + 2 * A + 2;
  std::size_t Bi = 0;
  while (Bi <= A) {
    std::size_t B0 = Bi;
    unsigned First = Vars[B0];
    do
      ++Bi;
    while (Bi <= A && Vars[Bi] == Vars[Bi - 1] + 1);
    std::size_t Bytes = 2 * (Bi - B0) * sizeof(double);
    std::memcpy(Dst0 + 2 * B0, Src0 + 2 * First, Bytes);
    std::memcpy(Dst1 + 2 * B0, Src1 + 2 * First, Bytes);
  }
  return 4 * (A + 1);
}

std::size_t optoct::packRowPairEntry(double *Dst, const HalfDbm &M,
                                     const Partition &P, bool FullyInit,
                                     const std::vector<unsigned> &Vars,
                                     std::size_t A) {
  if (FullyInit)
    return packRowPair(Dst, M, Vars, A);
  unsigned Hi = Vars[A];
  int CA = P.componentOf(Hi);
  double *Dst0 = Dst;
  double *Dst1 = Dst + 2 * A + 2;
  for (std::size_t B = 0; B != A; ++B) {
    unsigned Lo = Vars[B];
    if (CA >= 0 && P.componentOf(Lo) == CA) {
      Dst0[2 * B] = M.at(2 * Hi, 2 * Lo);
      Dst0[2 * B + 1] = M.at(2 * Hi, 2 * Lo + 1);
      Dst1[2 * B] = M.at(2 * Hi + 1, 2 * Lo);
      Dst1[2 * B + 1] = M.at(2 * Hi + 1, 2 * Lo + 1);
    } else {
      Dst0[2 * B] = Infinity;
      Dst0[2 * B + 1] = Infinity;
      Dst1[2 * B] = Infinity;
      Dst1[2 * B + 1] = Infinity;
    }
  }
  Dst0[2 * A] = 0.0;
  Dst1[2 * A + 1] = 0.0;
  if (CA >= 0) {
    Dst0[2 * A + 1] = M.at(2 * Hi, 2 * Hi + 1);
    Dst1[2 * A] = M.at(2 * Hi + 1, 2 * Hi);
  } else {
    Dst0[2 * A + 1] = Infinity;
    Dst1[2 * A] = Infinity;
  }
  return 4 * (A + 1);
}

void optoct::scatterComponent(const double *Src, HalfDbm &M,
                              const std::vector<unsigned> &Vars) {
  for (std::size_t A = 0, NumV = Vars.size(); A != NumV; ++A) {
    unsigned Hi = Vars[A];
    double *Dst0 = M.row(2 * Hi);
    double *Dst1 = M.row(2 * Hi + 1);
    const double *Src0 = Src + HalfDbm::index(2 * static_cast<unsigned>(A), 0);
    const double *Src1 =
        Src + HalfDbm::index(2 * static_cast<unsigned>(A) + 1, 0);
    std::size_t Bi = 0;
    while (Bi <= A) {
      std::size_t B0 = Bi;
      unsigned First = Vars[B0];
      do
        ++Bi;
      while (Bi <= A && Vars[Bi] == Vars[Bi - 1] + 1);
      std::size_t Bytes = 2 * (Bi - B0) * sizeof(double);
      std::memcpy(Dst0 + 2 * First, Src0 + 2 * B0, Bytes);
      std::memcpy(Dst1 + 2 * First, Src1 + 2 * B0, Bytes);
    }
  }
}
