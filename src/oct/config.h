//===- oct/config.h - Runtime configuration of the library ------*- C++ -*-===//
///
/// \file
/// Global knobs corresponding to the paper's design choices, exposed so
/// the ablation benchmarks (bench_ablation) can toggle each optimization
/// independently:
///   * SparsityThreshold — the t in "use Dense if D < t" (Section 3.5).
///   * EnableVectorization — AVX kernels vs scalar loops (Section 5.2).
///   * EnableDecomposition — maintain independent components (Section 3.3).
///   * EnableSparse — use the sparse closure for sparse DBMs (Section 5.3).
///   * LazyStrengthening — optional extension (follow-on ELINA work): skip
///     materializing entailed cross-component constraints in decomposed
///     strengthening, keeping components separate. Off by default to match
///     the 2015 paper (Section 5.4 merges such components).
///
/// Every knob's *initial* value can be overridden from the environment,
/// so CI legs and external harnesses can force a configuration without
/// recompiling (the benches record these variables in their JSON
/// headers for cross-machine comparability):
///   * OPTOCT_VECTORIZE=0            — scalar fallback kernels only
///   * OPTOCT_DECOMPOSITION=0        — no independent components
///   * OPTOCT_SPARSE=0               — no sparse closure
///   * OPTOCT_LAZY_STRENGTHENING=1   — enable the post-2015 extension
///   * OPTOCT_SPARSITY_THRESHOLD=t   — the Section 3.5 threshold, in [0,1]
///   * OPTOCT_BLOCK_CUTOFF=m         — blocked-layout batching cutoff (vars)
///   * OPTOCT_SIMD=scalar|avx2|avx512 — force a kernel tier (this one is
///     read by oct/simd_dispatch.cpp at startup, not through octConfig())
/// For the boolean flags, "0" means off and any other non-empty value
/// means on; unset/empty keeps the built-in default. The variables are
/// read once, on first use of octConfig(); later writes through
/// octConfig() still win (the ablation benches toggle knobs between
/// runs as before).
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CONFIG_H
#define OPTOCT_OCT_CONFIG_H

namespace optoct {

/// Mutable global configuration. Read-mostly and process-wide: the
/// domain only ever reads it, so any number of concurrent analyses may
/// run under one configuration. Writes are not synchronized — flip the
/// knobs only while no analysis thread is running (benchmarks toggle
/// them between runs; the batch runtime configures before spawning
/// workers).
struct OctConfig {
  /// Sparsity decision threshold t (Section 3.5): a DBM with sparsity
  /// D = 1 - nni/(2n^2+2n) is treated as dense when D < t.
  double SparsityThreshold = 0.75;

  /// Use AVX kernels in dense closure/strengthening and dense operators.
  bool EnableVectorization = true;

  /// Maintain and exploit independent components (online decomposition).
  bool EnableDecomposition = true;

  /// Use the index-driven sparse closure when D >= SparsityThreshold.
  bool EnableSparse = true;

  /// Extension beyond the 2015 paper: leave cross-component entailed
  /// constraints implicit during decomposed strengthening.
  bool LazyStrengthening = false;

  /// Components with fewer variables than this are gathered into the
  /// contiguous blocked layout (oct/blocked_layout.h) and batched into
  /// one span-kernel pass per operator call; components at or above it
  /// stream their row runs directly. Defaults to 0 (never batch): the
  /// BENCH_operators k-sweep measured the per-component path ahead of
  /// or tied with batching at every component count — the extra
  /// pack/scatter traffic of the shared block costs more than the
  /// saved kernel dispatches. The knob (OPTOCT_BLOCK_CUTOFF) remains
  /// for machines where dispatch overhead dominates, and the
  /// differential tests sweep it to keep the batched legs correct.
  unsigned BlockedCutoffVars = 0;
};

/// Library-wide configuration instance.
OctConfig &octConfig();

} // namespace optoct

#endif // OPTOCT_OCT_CONFIG_H
