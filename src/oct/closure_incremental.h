//===- oct/closure_incremental.h - Incremental closure ----------*- C++ -*-===//
///
/// \file
/// Incremental strong closure (Section 5.6): when a closed DBM is
/// modified only in the rows/columns of a few variables (the typical
/// situation after the meet of an assignment or guard), closure is
/// restored in quadratic time by one pivot-pair pass per touched
/// variable — the same double loop as one iteration of the outermost
/// loop of the dense shortest-path closure — followed by a
/// strengthening step. All of Algorithm 3's optimizations (column
/// buffering, scalar replacement, vectorization) apply.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CLOSURE_INCREMENTAL_H
#define OPTOCT_OCT_CLOSURE_INCREMENTAL_H

#include "oct/closure_common.h"
#include "oct/dbm.h"

#include <vector>

namespace optoct {

/// Incremental strong closure of a fully initialized half DBM that was
/// strongly closed before the rows/columns of the variables in
/// \p Touched were modified. Returns false if the octagon became empty.
bool incrementalClosureDense(HalfDbm &M, const std::vector<unsigned> &Touched,
                             ClosureScratch &Scratch);

/// Restricted variant for the Decomposed kind: the DBM is meaningful
/// only on \p Vars (sorted; must contain every variable of \p Touched)
/// and the pass touches only entries within \p Vars. The caller is
/// responsible for the emptiness check on the component diagonal.
void incrementalClosureRestricted(HalfDbm &M,
                                  const std::vector<unsigned> &Vars,
                                  const std::vector<unsigned> &Touched,
                                  ClosureScratch &Scratch);

} // namespace optoct

#endif // OPTOCT_OCT_CLOSURE_INCREMENTAL_H
