//===- oct/closure_sparse.h - Index-driven sparse closure -------*- C++ -*-===//
///
/// \file
/// The paper's sparse closure (Section 5.3). Sparse DBMs keep no
/// persistent index of their finite entries (that would cost quadratic
/// space); instead, each pivot iteration builds a linear-space index of
/// the finite entries in the pivot rows/columns and performs a min
/// operation only when both operands are finite. The strengthening step
/// likewise indexes the finite diagonal operands. Complexity is
/// O(n^2 + sum_k k_k * l_k), quadratic for very sparse matrices.
///
/// All routines exist in a *restricted* form that operates on the
/// submatrix induced by a sorted variable list — this is how the
/// decomposed closure (Section 5.4) runs the sparse algorithms directly
/// on (possibly non-contiguous) independent components without copying.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CLOSURE_SPARSE_H
#define OPTOCT_OCT_CLOSURE_SPARSE_H

#include "oct/closure_common.h"
#include "oct/dbm.h"

#include <cstddef>
#include <vector>

namespace optoct {

/// Sparse shortest-path closure restricted to the components' variables
/// \p Vars (sorted ascending). Touches only entries whose endpoints both
/// lie in \p Vars.
void shortestPathSparseRestricted(HalfDbm &M,
                                  const std::vector<unsigned> &Vars,
                                  ClosureScratch &Scratch);

/// Sparse strengthening restricted to \p Vars (sorted ascending).
void strengthenSparseRestricted(HalfDbm &M, const std::vector<unsigned> &Vars,
                                ClosureScratch &Scratch);

/// Full sparse strong closure of a fully initialized matrix. Computes
/// the exact number of finite entries into \p NniOut (the sparse closure
/// "can calculate nni precisely without incurring large overheads",
/// Section 4.2). Returns false if the octagon is empty.
bool closureSparse(HalfDbm &M, ClosureScratch &Scratch, std::size_t &NniOut);

} // namespace optoct

#endif // OPTOCT_OCT_CLOSURE_SPARSE_H
