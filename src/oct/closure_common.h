//===- oct/closure_common.h - Shared closure utilities ----------*- C++ -*-===//
///
/// \file
/// Scratch buffers shared by the optimized closure algorithms. The
/// paper's locality optimizations (Section 5.2) buffer the pivot rows,
/// pivot columns, and the diagonal operands in contiguous arrays; the
/// scratch owns those arrays so repeated closures do not re-allocate.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CLOSURE_COMMON_H
#define OPTOCT_OCT_CLOSURE_COMMON_H

#include "oct/dbm.h"
#include "support/aligned.h"

#include <vector>

namespace optoct {

/// Reusable per-closure working storage (linear space, Section 5.2/5.3).
struct ClosureScratch {
  /// Pivot column buffers: ColK[i] = O(i, 2k), ColK1[i] = O(i, 2k+1).
  AlignedBuffer<double> ColK, ColK1;
  /// Pivot row buffers: RowK[j] = O(2k, j), RowK1[j] = O(2k+1, j).
  /// By coherence RowK[j] = ColK1[j^1] and RowK1[j] = ColK[j^1].
  AlignedBuffer<double> RowK, RowK1;
  /// Strengthening operand buffer: T[j] = O(j^1, j), so the diagonal
  /// operand d_i = O(i, i^1) is T[i^1].
  AlignedBuffer<double> T;
  /// Index lists of finite entries for the sparse closure (Section 5.3).
  std::vector<unsigned> IdxColK, IdxColK1, IdxRowK, IdxRowK1, IdxT;
  /// Contiguous submatrix copy reused by the decomposed closure's dense
  /// path (the hot per-closure allocation otherwise). Per-thread like
  /// the rest of the scratch.
  HalfDbm DenseTmp;

  /// Grows the buffers to hold at least \p Dim (= 2n) doubles each.
  void ensure(unsigned Dim) {
    if (Dim <= Capacity)
      return;
    ColK.resizeDiscard(Dim);
    ColK1.resizeDiscard(Dim);
    RowK.resizeDiscard(Dim);
    RowK1.resizeDiscard(Dim);
    T.resizeDiscard(Dim);
    Capacity = Dim;
  }

private:
  unsigned Capacity = 0;
};

} // namespace optoct

#endif // OPTOCT_OCT_CLOSURE_COMMON_H
