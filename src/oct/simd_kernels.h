//===- oct/simd_kernels.h - Per-ISA kernel table (runtime dispatch) -*- C++ -*-===//
///
/// \file
/// One vtable of every SIMD-sensitive kernel in the domain: the span
/// kernels of the quadratic lattice operators (join/meet/widen/narrow/
/// leq/eq — see oct/vector_ops.h for the operator-level conventions)
/// and the min-plus family of the dense closure and strengthening
/// (oct/vector_min.h). Each tier — pinned scalar, AVX2, AVX-512 — is a
/// separate translation unit compiled with function target attributes,
/// so one binary carries all three and `simd_dispatch.h` selects the
/// best supported tier once at startup. The thin inline wrappers in
/// vector_ops.h / vector_min.h keep every call site unchanged.
///
/// Contract shared by all tiers (tests/test_vector_ops.cpp and
/// tests/test_simd_dispatch.cpp enforce it): for identical inputs,
/// every tier produces bitwise-identical outputs *and* identical
/// finite-entry counts. Ties resolve like MAXPD/MINPD (second operand),
/// no FMA contraction is permitted, and the threshold search of the
/// widening kernel resolves to exactly the std::lower_bound result.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_SIMD_KERNELS_H
#define OPTOCT_OCT_SIMD_KERNELS_H

#include <cstddef>

/// The scalar tier doubles as the ablation baseline, so -O3 must not
/// silently turn it back into SIMD: on GCC the kernel is compiled with
/// auto-vectorization off, on Clang the loops carry a
/// vectorize(disable) pragma. (Intrinsic bodies in the AVX tiers are
/// unaffected — they are explicit builtins, not loop transforms.)
#if defined(__clang__)
#define OPTOCT_SCALAR_KERNEL
#define OPTOCT_SCALAR_LOOP                                                     \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define OPTOCT_SCALAR_KERNEL                                                   \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define OPTOCT_SCALAR_LOOP
#else
#define OPTOCT_SCALAR_KERNEL
#define OPTOCT_SCALAR_LOOP
#endif

/// The AVX tiers exist only on x86; elsewhere the scalar table is the
/// one and only tier.
#if defined(__x86_64__) || defined(__i386__)
#define OPTOCT_SIMD_X86 1
#endif

namespace optoct {

/// Function-pointer table for one ISA tier. Pointers are filled by the
/// per-tier translation units (simd_kernels_{scalar,avx2,avx512}.cpp);
/// the active table is selected once by simd_dispatch.cpp and read via
/// relaxed atomic loads from any number of analysis threads.
struct SpanKernels {
  /// Tier name as reported in logs, bench headers, and OPTOCT_SIMD.
  const char *Name;

  // --- Lattice-operator span kernels (oct/vector_ops.h wrappers) ---
  void (*MaxSpan)(double *Dst, const double *A, const double *B,
                  std::size_t Len);
  void (*MinSpan)(double *Dst, const double *A, const double *B,
                  std::size_t Len);
  std::size_t (*MaxSpanCount)(double *Dst, const double *A, const double *B,
                              std::size_t Len);
  std::size_t (*MinSpanCount)(double *Dst, const double *A, const double *B,
                              std::size_t Len);
  std::size_t (*NarrowSpanCount)(double *Dst, const double *OldS,
                                 const double *NewS, std::size_t Len);
  std::size_t (*WidenSpanCount)(double *Dst, const double *OldS,
                                const double *NewS, std::size_t Len,
                                const double *Thr, std::size_t ThrN);
  bool (*SpanLeq)(const double *A, const double *B, std::size_t Len);
  bool (*SpanEq)(const double *A, const double *B, std::size_t Len);

  // --- Closure/strengthening min-plus kernels (oct/vector_min.h) ---
  void (*MinPlusRow2)(double *Dst, const double *RowA, double A,
                      const double *RowB, double B, std::size_t Len);
  void (*MinPlusRow1)(double *Dst, const double *RowA, double A,
                      std::size_t Len);
  void (*StrengthenRow)(double *Dst, const double *T, double Di,
                        std::size_t Len);
  void (*MinRows)(double *Dst, const double *Src, std::size_t Len);
  void (*MaxRows)(double *Dst, const double *Src, std::size_t Len);
};

/// The pinned-scalar tier: always present, genuinely scalar (the
/// ablation leg and the OPTOCT_SIMD=scalar override both land here).
extern const SpanKernels SpanKernelsScalar;

#if OPTOCT_SIMD_X86
/// 256-bit AVX2 tier: the kernels PR 4 shipped, now compiled with
/// target attributes so a portable (OPTOCT_NATIVE=OFF) build still
/// carries them.
extern const SpanKernels SpanKernelsAvx2;
/// 512-bit tier (avx512f/dq/bw/vl) with masked tails.
extern const SpanKernels SpanKernelsAvx512;
#endif

} // namespace optoct

#endif // OPTOCT_OCT_SIMD_KERNELS_H
