//===- oct/octagon_transfer.cpp - Transfer functions ---------------------===//
///
/// \file
/// Constraint meets, assignments, havoc, bound queries, constraint
/// extraction, and dimension management for the OptOctagon domain.
///
//===----------------------------------------------------------------------===//

#include "oct/config.h"
#include "oct/octagon.h"
#include "support/faultinject.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace optoct;

//===----------------------------------------------------------------------===//
// Constraints
//===----------------------------------------------------------------------===//

void Octagon::addConstraint(const OctCons &C) { addConstraints({C}); }

void Octagon::addConstraints(const std::vector<OctCons> &Cs) {
  if (Empty || Cs.empty())
    return;
  bool Changed = false;

  for (const OctCons &C : Cs) {
    assert(C.I < numVars() && (C.isUnary() || C.J < numVars()) &&
           "constraint variable out of range");
    OctCons::Entry E = C.toEntry();
    double Bound = E.Bound;
    support::faultPoint("oct.constraint", &Bound);
    // Boundary sanitization: bounds enter the DBM only here, so the
    // closure kernels never see NaN or -inf. A NaN bound carries no
    // information — dropping it keeps the octagon (soundly) weaker. A
    // -inf bound is unsatisfiable.
    if (std::isnan(Bound))
      continue;
    if (Bound == -Infinity) {
      markEmpty();
      return;
    }
    relateInit(C.I, C.isUnary() ? C.I : C.J);
    double Old = M.get(E.Row, E.Col);
    if (Bound < Old) {
      setEntry(E.Row, E.Col, Bound);
      Changed = true;
    }
  }
  if (!Changed)
    return;
  // Like APRON's meet-with-constraints, the result is left unclosed;
  // the next operator needing the closed form triggers a full closure
  // (incremental closure is reserved for assignments, Section 5.6).
  Closed = false;
  Kind = P.empty()    ? DbmKind::Top
         : P.isWhole() ? Kind
                       : DbmKind::Decomposed;
}

//===----------------------------------------------------------------------===//
// Assignment
//===----------------------------------------------------------------------===//

void Octagon::shiftVar(unsigned X, double C) {
  if (Empty || !P.contains(X))
    return; // an unconstrained x stays unconstrained under x := x + c
  // Entry (i, 2x) gains c, (i, 2x+1) loses c; the rows of x are
  // adjusted implicitly through coherence. Finiteness is unaffected.
  for (unsigned V : P.component(static_cast<std::size_t>(P.componentOf(X)))) {
    if (V == X)
      continue;
    for (unsigned S = 0; S != 2; ++S) {
      unsigned I = 2 * V + S;
      M.set(I, 2 * X, M.get(I, 2 * X) + C);
      M.set(I, 2 * X + 1, M.get(I, 2 * X + 1) - C);
    }
  }
  M.at(2 * X + 1, 2 * X) += 2 * C; //  2x <= b   ->  2x <= b + 2c
  M.at(2 * X, 2 * X + 1) -= 2 * C; // -2x <= b   -> -2x <= b - 2c
}

void Octagon::negateShiftVar(unsigned X, double C) {
  if (Empty || !P.contains(X))
    return; // an unconstrained x stays unconstrained under x := -x + c
  for (unsigned V : P.component(static_cast<std::size_t>(P.componentOf(X)))) {
    if (V == X)
      continue;
    for (unsigned S = 0; S != 2; ++S) {
      unsigned I = 2 * V + S;
      double Pos = M.get(I, 2 * X);     // old bound on  x - vhat_i
      double Neg = M.get(I, 2 * X + 1); // old bound on -x - vhat_i
      M.set(I, 2 * X, Neg + C);
      M.set(I, 2 * X + 1, Pos - C);
    }
  }
  double Up = M.at(2 * X + 1, 2 * X); // old  2x <= Up
  double Lo = M.at(2 * X, 2 * X + 1); // old -2x <= Lo
  M.at(2 * X + 1, 2 * X) = Lo + 2 * C;
  M.at(2 * X, 2 * X + 1) = Up - 2 * C;
}

void Octagon::forgetVar(unsigned X) {
  int C = P.componentOf(X);
  if (C < 0)
    return;
  for (unsigned V : P.component(static_cast<std::size_t>(C))) {
    if (V == X)
      continue;
    for (unsigned R = 0; R != 2; ++R)
      for (unsigned S = 0; S != 2; ++S)
        setEntry(2 * V + R, 2 * X + S, Infinity);
  }
  setEntry(2 * X, 2 * X + 1, Infinity);
  setEntry(2 * X + 1, 2 * X, Infinity);
  if (octConfig().EnableDecomposition) {
    NniExplicit -= 2; // X's diagonal zeros become implicit again
    P.removeVar(X);
  }
}

void Octagon::assign(unsigned X, const LinExpr &E) {
  assert(X < numVars() && "assignment target out of range");
  if (Empty)
    return;

  // A non-finite constant (C-API input, overflowed fold) has no
  // octagonal encoding that avoids NaN arithmetic in the shift paths;
  // forgetting the target is the sound approximation.
  if (!std::isfinite(E.Const)) {
    havoc(X);
    return;
  }

  // Exact octagonal forms first (Section 2: assignments are meets of
  // the two induced inequalities).
  if (const auto *Term = E.octagonalTerm()) {
    int A = Term->first;
    unsigned Y = Term->second;
    if (Y == X) {
      // x := +-x + c is an invertible shift; closure is preserved.
      if (A == 1) {
        shiftVar(X, E.Const);
        return;
      }
      negateShiftVar(X, E.Const);
      return;
    }
    close();
    if (Empty)
      return;
    forgetVar(X);
    relateInit(X, Y);
    if (A == 1) {
      // x - y <= c and y - x <= -c.
      setEntry(2 * Y, 2 * X, E.Const);
      setEntry(2 * X, 2 * Y, -E.Const);
    } else {
      // x + y <= c and -x - y <= -c.
      setEntry(2 * Y + 1, 2 * X, E.Const);
      setEntry(2 * Y, 2 * X + 1, -E.Const);
    }
    Closed = false;
    // The new arcs live in the bands of both x and y, so the
    // incremental closure must pivot both variables.
    incrementalClose({X, Y});
    return;
  }

  if (E.Terms.empty()) {
    // x := c.
    close();
    if (Empty)
      return;
    forgetVar(X);
    relateInit(X, X);
    setEntry(2 * X + 1, 2 * X, 2 * E.Const);
    setEntry(2 * X, 2 * X + 1, -2 * E.Const);
    Closed = false;
    incrementalClose({X});
    return;
  }

  // General linear expression: interval fallback (as in APRON).
  Interval Iv = evalInterval(E);
  close();
  if (Empty)
    return;
  forgetVar(X);
  if (Iv.isBottom()) {
    markEmpty();
    return;
  }
  if (!isFinite(Iv.Hi) && !isFinite(-Iv.Lo))
    return; // unconstrained result; X stays forgotten
  relateInit(X, X);
  if (isFinite(Iv.Hi))
    setEntry(2 * X + 1, 2 * X, 2 * Iv.Hi);
  if (Iv.Lo != -Infinity)
    setEntry(2 * X, 2 * X + 1, -2 * Iv.Lo);
  Closed = false;
  incrementalClose({X});
}

void Octagon::havoc(unsigned X) {
  assert(X < numVars() && "havoc target out of range");
  if (Empty)
    return;
  close();
  if (Empty)
    return;
  forgetVar(X);
  // Projection of a strongly closed octagon stays strongly closed.
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

Interval Octagon::bounds(unsigned V) {
  assert(V < numVars() && "variable out of range");
  close();
  if (Empty)
    return {Infinity, -Infinity};
  Interval Iv;
  double Up = entry(2 * V + 1, 2 * V); //  2v <= Up
  double Lo = entry(2 * V, 2 * V + 1); // -2v <= Lo
  if (isFinite(Up))
    Iv.Hi = Up / 2;
  if (isFinite(Lo))
    Iv.Lo = -Lo / 2;
  return Iv;
}

Interval Octagon::evalInterval(const LinExpr &E) {
  close();
  if (Empty)
    return {Infinity, -Infinity};
  double Lo = E.Const, Hi = E.Const;
  for (const auto &[Coef, Var] : E.Terms) {
    if (Coef == 0)
      continue;
    Interval B = bounds(Var);
    double C = static_cast<double>(Coef);
    // Coef != 0, so C * inf is a correctly-signed infinity (no NaN), and
    // the running Lo/Hi only ever accumulate same-signed infinities.
    if (Coef > 0) {
      Lo += C * B.Lo;
      Hi += C * B.Hi;
    } else {
      Lo += C * B.Hi;
      Hi += C * B.Lo;
    }
  }
  return {Lo, Hi};
}

std::vector<OctCons> Octagon::constraints() {
  close();
  std::vector<OctCons> Out;
  if (Empty)
    return Out;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (std::size_t A = 0; A != Vars.size(); ++A)
      for (std::size_t B = 0; B <= A; ++B) {
        unsigned VA = Vars[A], VB = Vars[B];
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S) {
            unsigned I = 2 * VA + R, J = 2 * VB + S;
            if (I == J)
              continue;
            double Bound = M.at(I, J);
            if (!isFinite(Bound))
              continue;
            // Entry (i,j) encodes vhat_j - vhat_i <= bound.
            if (VA == VB) {
              // Unary: (2v+1,2v) is 2v <= b; (2v,2v+1) is -2v <= b.
              if (R == 1)
                Out.push_back(OctCons::upper(VA, Bound / 2));
              else
                Out.push_back(OctCons::lower(VA, Bound / 2));
              continue;
            }
            int CoefB = S == 0 ? +1 : -1; // vhat_j contributes +-vB
            int CoefA = R == 0 ? -1 : +1; // -vhat_i contributes -+vA
            Out.push_back({CoefB, VB, CoefA, VA, Bound});
          }
      }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Dimension management
//===----------------------------------------------------------------------===//

void Octagon::addVars(unsigned Count) {
  if (Count == 0)
    return;
  unsigned OldN = numVars(), NewN = OldN + Count;
  HalfDbm NewM(NewN);
  // The packed layout is a prefix-extension: entry indices of existing
  // rows do not change when variables are appended.
  std::memcpy(NewM.data(), M.data(), HalfDbm::matSize(OldN) * sizeof(double));
  if (FullyInit) {
    for (unsigned I = 2 * OldN; I != 2 * NewN; ++I) {
      double *Row = NewM.row(I);
      std::size_t Len = (I | 1u) + 1;
      for (std::size_t J = 0; J != Len; ++J)
        Row[J] = Infinity;
      NewM.at(I, I) = 0.0;
    }
    NniExplicit += 2 * Count;
  }
  M = std::move(NewM);
  P.resizeVars(NewN);
  // The Dense kind and the decomposition-disabled mode keep the whole
  // partition as an invariant; elsewhere fresh variables stay uncovered.
  if (Kind == DbmKind::Dense || !octConfig().EnableDecomposition)
    P = Partition::whole(NewN);
  // Fresh variables are unconstrained: closure and emptiness are
  // unaffected.
}

void Octagon::removeTrailingVars(unsigned Count) {
  if (Count == 0)
    return;
  assert(Count <= numVars() && "removing more variables than exist");
  unsigned OldN = numVars(), NewN = OldN - Count;
  if (!Empty)
    close();
  if (Empty) {
    M = HalfDbm(NewN);
    P = Partition(NewN);
    if (!octConfig().EnableDecomposition)
      P = Partition::whole(NewN);
    return;
  }
  for (unsigned V = NewN; V != OldN; ++V)
    P.removeVar(V);
  HalfDbm NewM(NewN);
  // NewN == 0 leaves both buffers empty; memcpy's pointers are declared
  // nonnull even for size 0, so the degenerate copy must be skipped.
  if (NewN != 0)
    std::memcpy(NewM.data(), M.data(),
                HalfDbm::matSize(NewN) * sizeof(double));
  M = std::move(NewM);
  P.resizeVars(NewN);
  if (!octConfig().EnableDecomposition)
    P = Partition::whole(NewN);

  // Recount nni within the surviving components.
  std::size_t Nni = 0;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Nni += isFinite(M.at(2 * Vars[A] + R, 2 * Vars[B] + S));
  }
  if (FullyInit)
    Nni += 2 * (NewN - P.coveredVars());
  NniExplicit = Nni;
  reclassify();
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string Octagon::str(const std::vector<std::string> *Names) {
  if (Empty)
    return "bottom";
  auto Name = [&](unsigned V) {
    if (Names && V < Names->size())
      return (*Names)[V];
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "v%u", V);
    return std::string(Buf);
  };
  std::vector<OctCons> Cs = constraints();
  if (Cs.empty())
    return "top";
  std::string Out;
  for (const OctCons &C : Cs) {
    if (!Out.empty())
      Out += " && ";
    char Buf[64];
    // + 0.0 canonicalizes a negative-zero bound to "0": which sign of
    // zero survives a min/max tie differs between the SIMD kernels
    // (MINPD/MAXPD keep the second operand) and scalar code, and the
    // two are indistinguishable everywhere except printf — invariant
    // strings must not depend on that.
    double Bound = C.Bound + 0.0;
    if (C.isUnary()) {
      std::snprintf(Buf, sizeof(Buf), "%s%s <= %g", C.CoefI < 0 ? "-" : "",
                    Name(C.I).c_str(), Bound);
    } else {
      std::snprintf(Buf, sizeof(Buf), "%s%s %c %s <= %g",
                    C.CoefI < 0 ? "-" : "", Name(C.I).c_str(),
                    C.CoefJ < 0 ? '-' : '+', Name(C.J).c_str(), Bound);
    }
    Out += Buf;
  }
  return Out;
}
