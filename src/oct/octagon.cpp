//===- oct/octagon.cpp - The OptOctagon abstract domain ------------------===//

#include "oct/octagon.h"

#include "oct/blocked_layout.h"
#include "oct/closure_dense.h"
#include "oct/closure_incremental.h"
#include "oct/closure_reference.h"
#include "oct/closure_sparse.h"
#include "oct/config.h"
#include "oct/vector_min.h"
#include "support/audit.h"
#include "support/budget.h"
#include "support/faultinject.h"
#include "support/timing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace optoct;

namespace {

/// "0" (and only "0") turns a flag off; unset/empty keeps the default.
bool envFlag(const char *Name, bool Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return !(V[0] == '0' && !V[1]);
}

/// Initial configuration with the OPTOCT_* environment overrides
/// applied (see oct/config.h). Read once, before any analysis thread
/// can exist, so the read-mostly contract of octConfig() holds.
OctConfig configFromEnv() {
  OctConfig C;
  C.EnableVectorization = envFlag("OPTOCT_VECTORIZE", C.EnableVectorization);
  C.EnableDecomposition =
      envFlag("OPTOCT_DECOMPOSITION", C.EnableDecomposition);
  C.EnableSparse = envFlag("OPTOCT_SPARSE", C.EnableSparse);
  C.LazyStrengthening =
      envFlag("OPTOCT_LAZY_STRENGTHENING", C.LazyStrengthening);
  if (const char *T = std::getenv("OPTOCT_SPARSITY_THRESHOLD")) {
    char *End = nullptr;
    double Value = std::strtod(T, &End);
    if (End != T && Value >= 0.0 && Value <= 1.0)
      C.SparsityThreshold = Value;
  }
  if (const char *T = std::getenv("OPTOCT_BLOCK_CUTOFF")) {
    char *End = nullptr;
    unsigned long Value = std::strtoul(T, &End, 10);
    if (End != T && *End == '\0')
      C.BlockedCutoffVars = static_cast<unsigned>(Value);
  }
  return C;
}

} // namespace

OctConfig &optoct::octConfig() {
  static OctConfig Config = configFromEnv();
  return Config;
}

// Per-thread: each analysis thread installs its own sink, so concurrent
// engines (src/runtime) never share a statistics object.
static thread_local OctStats *StatsSink = nullptr;

void optoct::setOctStatsSink(OctStats *Sink) { StatsSink = Sink; }
OctStats *optoct::octStatsSink() { return StatsSink; }

ClosureScratch &Octagon::scratch() {
  static thread_local ClosureScratch S;
  return S;
}

void optoct::reserveClosureScratch(unsigned NumVars) {
  ClosureScratch &S = Octagon::scratch();
  S.ensure(2 * NumVars);
  S.DenseTmp.resizeDiscard(NumVars);
  // The lattice operators' blocked component layout shares the same
  // per-worker pre-sizing hook.
  reserveBlockScratch(NumVars);
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Octagon::Octagon(unsigned NumVars, PrivateTag)
    : M(NumVars), P(NumVars), Kind(DbmKind::Top), Closed(false) {
  support::chargeDbmCells(M.size());
}

Octagon::Octagon(unsigned NumVars) : M(NumVars), P(NumVars) {
  support::faultPoint("oct.alloc");
  support::chargeDbmCells(M.size());
  if (octConfig().EnableDecomposition) {
    // Top type (Section 3.4): the matrix is allocated but left
    // uninitialized; the empty partition makes every entry implicitly
    // trivial.
    Kind = DbmKind::Top;
    Closed = true;
    return;
  }
  // Decomposition disabled (ablation): everything is a whole-matrix
  // octagon, fully materialized from the start.
  M.initTop();
  P = Partition::whole(NumVars);
  Kind = DbmKind::Dense;
  FullyInit = true;
  Closed = true;
  NniExplicit = 2 * static_cast<std::size_t>(NumVars);
}

Octagon Octagon::makeBottom(unsigned NumVars) {
  Octagon O(NumVars);
  O.markEmpty();
  return O;
}

void Octagon::markEmpty() {
  Empty = true;
  Closed = true;
}

//===----------------------------------------------------------------------===//
// Entry access and simple queries
//===----------------------------------------------------------------------===//

double Octagon::entry(unsigned I, unsigned J) const {
  assert(!Empty && "entry() on the empty octagon");
  if (FullyInit)
    return M.get(I, J);
  if (I == J)
    return 0.0;
  unsigned U = I / 2, V = J / 2;
  if (U == V)
    return P.contains(U) ? M.get(I, J) : Infinity;
  int CU = P.componentOf(U);
  if (CU < 0 || CU != P.componentOf(V))
    return Infinity;
  return M.get(I, J);
}

std::size_t Octagon::nni() const {
  if (FullyInit)
    return NniExplicit;
  // Uncovered variables contribute their two implicit diagonal zeros.
  return NniExplicit + 2 * (numVars() - P.coveredVars());
}

double Octagon::sparsity() const {
  unsigned N = numVars();
  std::size_t Total = HalfDbm::matSize(N);
  if (Total == 0)
    return 0.0;
  return 1.0 - static_cast<double>(nni()) / static_cast<double>(Total);
}

bool Octagon::isBottom() {
  close();
  return Empty;
}

//===----------------------------------------------------------------------===//
// Lazy initialization of component entries
//===----------------------------------------------------------------------===//

void Octagon::setEntry(unsigned I, unsigned J, double Value) {
  double Old = M.get(I, J);
  M.set(I, J, Value);
  NniExplicit += static_cast<std::size_t>(isFinite(Value)) -
                 static_cast<std::size_t>(isFinite(Old));
}

int Octagon::mergeComponentsInit(const std::vector<std::size_t> &CompIndices) {
  if (!FullyInit) {
    // Initialize the cross entries between every pair of distinct
    // blocks being merged (Section 3: trivial entries are inserted only
    // when needed). Each covered variable's own block entries are
    // already valid.
    for (std::size_t A = 0; A != CompIndices.size(); ++A)
      for (std::size_t B = 0; B != A; ++B) {
        if (CompIndices[A] == CompIndices[B])
          continue;
        for (unsigned U : P.component(CompIndices[A]))
          for (unsigned V : P.component(CompIndices[B]))
            M.initPairTrivial(U, V);
      }
  }
  return P.mergeComponents(CompIndices);
}

void Octagon::relateInit(unsigned U, unsigned V) {
  if (!octConfig().EnableDecomposition)
    return; // partition is permanently whole
  int CU = P.componentOf(U);
  if (CU < 0) {
    if (!FullyInit)
      M.initPairTrivial(U, U);
    NniExplicit += 2; // the two diagonal zeros become explicit
    CU = static_cast<int>(P.addSingleton(U));
  }
  if (U == V)
    return;
  int CV = P.componentOf(V);
  if (CV < 0) {
    if (!FullyInit)
      M.initPairTrivial(V, V);
    NniExplicit += 2;
    CV = static_cast<int>(P.addSingleton(V));
  }
  if (CU != CV)
    mergeComponentsInit({static_cast<std::size_t>(CU),
                         static_cast<std::size_t>(CV)});
}

void Octagon::materialize() {
  if (FullyInit)
    return;
  unsigned N = numVars();
  for (unsigned U = 0; U != N; ++U) {
    if (!P.contains(U))
      M.initPairTrivial(U, U);
    int CU = P.componentOf(U);
    for (unsigned V = 0; V != U; ++V) {
      int CV = P.componentOf(V);
      if (CU < 0 || CU != CV)
        M.initPairTrivial(U, V);
    }
  }
  NniExplicit += 2 * (N - P.coveredVars());
  FullyInit = true;
}

//===----------------------------------------------------------------------===//
// Closure dispatch (Section 5)
//===----------------------------------------------------------------------===//

void Octagon::close() {
  if (Closed || Empty)
    return;
  if (support::auditEnabled()) {
    // Level-1 recovery ladder (support/audit.h): validate the result,
    // optionally cross-check it against the reference closure, and on
    // corruption recompute from a pre-closure snapshot.
    closeAudited();
    return;
  }
  closeInner();
}

void Octagon::closeInner() {
  std::uint64_t Begin = StatsSink ? readCycles() : 0;
  int Tag;

  // A whole partition means every pair lies inside the single
  // component, so the buffer is in fact fully initialized.
  if (P.isWhole() && !FullyInit)
    FullyInit = true;

  if (P.empty()) {
    // Top closure (Section 5.5): nothing to minimize.
    Kind = DbmKind::Top;
    Tag = CK_Top;
  } else if (!octConfig().EnableDecomposition || P.isWhole()) {
    Tag = sparsity() >= octConfig().SparsityThreshold &&
                  octConfig().EnableSparse
              ? CK_Sparse
              : CK_Dense;
    closeMonolithic();
  } else {
    Tag = CK_Decomposed;
    closeDecomposed();
  }

  Closed = true;
  if (StatsSink)
    StatsSink->recordClosure(readCycles() - Begin, numVars(), Tag);
}

void Octagon::closeMonolithic() {
  assert(FullyInit && "monolithic closure needs a materialized matrix");
  OctConfig &Cfg = octConfig();
  if (Cfg.EnableSparse && sparsity() >= Cfg.SparsityThreshold) {
    std::size_t Nni = 0;
    if (!closureSparse(M, scratch(), Nni)) {
      markEmpty();
      return;
    }
    NniExplicit = Nni;
    // Piggyback the exact recomputation of the independent components
    // on the sparse closure (Section 3.5).
    if (Cfg.EnableDecomposition)
      P = extractPartition(M);
    reclassify();
    return;
  }
  if (!closureDense(M, scratch())) {
    markEmpty();
    return;
  }
  // Dense operators over-approximate nni as 2n^2+2n (Section 4.1).
  NniExplicit = M.size();
  reclassify();
}

void Octagon::closeDecomposed() {
  OctConfig &Cfg = octConfig();

  // Shortest-path closure per component; it cannot connect variables in
  // different components (Section 5.4).
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    // Decide dense vs sparse from the submatrix's own sparsity,
    // computed on the fly before each closure (Section 3.3).
    std::size_t SubSize = HalfDbm::matSize(static_cast<unsigned>(Vars.size()));
    std::size_t SubNni = 0;
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B) {
        unsigned Hi = Vars[A], Lo = Vars[B];
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            SubNni += isFinite(M.at(2 * Hi + R, 2 * Lo + S));
      }
    double SubD =
        1.0 - static_cast<double>(SubNni) / static_cast<double>(SubSize);

    if (Cfg.EnableSparse && SubD >= Cfg.SparsityThreshold) {
      shortestPathSparseRestricted(M, Vars, scratch());
      continue;
    }
    // Dense submatrix: copy into a contiguous temporary so the
    // vectorized Algorithm 3 applies, then copy back (Section 4.3). The
    // temp lives in the per-thread scratch so repeated closures (and
    // batched jobs on the same worker) reuse one allocation.
    unsigned SubN = static_cast<unsigned>(Vars.size());
    HalfDbm &Tmp = scratch().DenseTmp;
    Tmp.resizeDiscard(SubN);
    for (unsigned A = 0; A != SubN; ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Tmp.at(2 * A + R, 2 * B + S) =
                M.at(2 * Vars[A] + R, 2 * Vars[B] + S);
    shortestPathDense(Tmp, scratch());
    for (unsigned A = 0; A != SubN; ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            M.at(2 * Vars[A] + R, 2 * Vars[B] + S) =
                Tmp.at(2 * A + R, 2 * B + S);
  }

  strengthenAndMerge();

  // Emptiness check over the covered diagonal, then normalize it.
  std::vector<unsigned> Covered = P.sortedVars();
  for (unsigned V : Covered)
    if (M.at(2 * V, 2 * V) < 0.0 || M.at(2 * V + 1, 2 * V + 1) < 0.0) {
      markEmpty();
      return;
    }
  for (unsigned V : Covered) {
    M.at(2 * V, 2 * V) = 0.0;
    M.at(2 * V + 1, 2 * V + 1) = 0.0;
  }

  // Exact recomputation of the components within each (possibly merged)
  // block, then recount nni (Section 3.5).
  Partition NewP(numVars());
  std::size_t Nni = 0;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    Partition Sub = extractPartition(M, P.component(C));
    for (std::size_t S = 0; S != Sub.numComponents(); ++S) {
      const std::vector<unsigned> &Block = Sub.component(S);
      NewP.addSingleton(Block[0]);
      for (std::size_t I = 1; I < Block.size(); ++I)
        NewP.relate(Block[0], Block[I]);
    }
  }
  P = std::move(NewP);
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Nni += isFinite(M.at(2 * Vars[A] + R, 2 * Vars[B] + S));
  }
  if (FullyInit)
    Nni += 2 * (numVars() - P.coveredVars());
  NniExplicit = Nni;
  reclassify();
}

void Octagon::strengthenAndMerge() {
  // Components holding a finite unary (diagonal-block) bound: only those
  // participate in strengthening, and in the faithful 2015 semantics
  // they merge into a single component (Section 5.4).
  std::vector<std::size_t> Bounded;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    for (unsigned V : P.component(C))
      if (isFinite(M.at(2 * V, 2 * V + 1)) ||
          isFinite(M.at(2 * V + 1, 2 * V))) {
        Bounded.push_back(C);
        break;
      }
  }
  if (Bounded.empty())
    return;

  if (octConfig().LazyStrengthening) {
    // Extension: strengthen within each component only, leaving the
    // entailed cross-component constraints implicit.
    for (std::size_t C : Bounded)
      strengthenSparseRestricted(M, P.component(C), scratch());
    return;
  }

  int Merged = mergeComponentsInit(Bounded);
  assert(Merged >= 0 && "merge of a non-empty list cannot fail");
  // The merged submatrix is likely sparse: use the sparse strengthening
  // (Section 5.4).
  strengthenSparseRestricted(M, P.component(static_cast<std::size_t>(Merged)),
                             scratch());
}

void Octagon::reclassify() {
  if (Empty)
    return;
  unsigned N = numVars();
  if (!octConfig().EnableDecomposition) {
    Kind = sparsity() >= octConfig().SparsityThreshold ? DbmKind::Sparse
                                                       : DbmKind::Dense;
    return;
  }
  if (P.empty()) {
    Kind = DbmKind::Top;
    return;
  }
  if (sparsity() < octConfig().SparsityThreshold) {
    // Switch to the Dense type (Section 3.5): requires a fully
    // initialized matrix.
    materialize();
    P = Partition::whole(N);
    Kind = DbmKind::Dense;
    return;
  }
  Kind = P.isWhole() || (P.numComponents() == 1 && FullyInit)
             ? DbmKind::Sparse
             : DbmKind::Decomposed;
}

//===----------------------------------------------------------------------===//
// Audited closure (the Level-1 recovery ladder, support/audit.h)
//===----------------------------------------------------------------------===//

namespace {

/// Entry-level agreement for the cross-check. Exact equality covers the
/// common case (identical bounds, both +inf); the tolerance absorbs the
/// different floating-point evaluation orders of the optimized closures
/// vs. Algorithm 1 along equal-length shortest paths.
bool boundsAgree(double A, double B) {
  if (A == B)
    return true;
  if (std::isnan(A) || std::isnan(B))
    return false;
  return std::abs(A - B) <=
         1e-9 * std::max({1.0, std::abs(A), std::abs(B)});
}

/// `L <= R` with the same epsilon, for the closedness spot-checks
/// (rounding in the strengthening half-sums may leave the triangle
/// inequality epsilon-violated without any corruption).
bool leqWithTolerance(double L, double R) {
  if (std::isnan(L) || std::isnan(R))
    return false;
  return L <= R + 1e-9 * std::max({1.0, std::abs(L), std::abs(R)});
}

std::string describeCell(unsigned I, unsigned J, double V) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "m[%u][%u]=%.17g", I, J, V);
  return Buf;
}

} // namespace

bool Octagon::auditValidate(std::string &Defect) {
  if (Empty)
    return true; // nothing representable to check
  const unsigned N = numVars(), D = 2 * N;

  // Zero diagonal on every *stored* live cell. entry() reports the
  // implicit 0 for uncovered variables, so it would mask a corrupted
  // buffer slot; go to the buffer directly.
  if (FullyInit) {
    for (unsigned I = 0; I != D; ++I) {
      double Diag = M.at(I, I);
      if (!(Diag == 0.0)) {
        Defect = "nonzero diagonal " + describeCell(I, I, Diag);
        return false;
      }
    }
  } else {
    for (unsigned V : P.sortedVars())
      for (unsigned S = 0; S != 2; ++S) {
        double Diag = M.at(2 * V + S, 2 * V + S);
        if (!(Diag == 0.0)) {
          Defect =
              "nonzero diagonal " + describeCell(2 * V + S, 2 * V + S, Diag);
          return false;
        }
      }
  }

  // NaN scan over the semantically live cells: every stored cell when
  // the buffer is fully materialized, the component submatrices
  // otherwise. A NaN bound poisons every min() it meets downstream.
  if (FullyInit) {
    const double *Buf = M.data();
    for (std::size_t I = 0, E = M.size(); I != E; ++I)
      if (std::isnan(Buf[I])) {
        Defect = "NaN in DBM buffer (packed index " + std::to_string(I) + ")";
        return false;
      }
  } else {
    for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
      const std::vector<unsigned> &Vars = P.component(C);
      for (std::size_t A = 0; A != Vars.size(); ++A)
        for (std::size_t B = 0; B <= A; ++B)
          for (unsigned R = 0; R != 2; ++R)
            for (unsigned S = 0; S != 2; ++S) {
              double V = M.at(2 * Vars[A] + R, 2 * Vars[B] + S);
              if (std::isnan(V)) {
                Defect = "NaN at " +
                         describeCell(2 * Vars[A] + R, 2 * Vars[B] + S, V);
                return false;
              }
            }
    }
  }

  // Closedness spot-checks on sampled (i, j, k) triples: a strongly
  // closed matrix satisfies m[i][j] <= m[i][k] + m[k][j] for all
  // triples. Sampling is seeded and tick-keyed, so a job checks the
  // same triples for any worker interleaving.
  support::AuditConfig Config = support::auditConfig();
  if (D >= 2 && Config.SpotCheckTriples != 0) {
    std::uint64_t Salt = support::auditHash(Config.Seed ^ support::auditNextTick());
    for (unsigned K = 0; K != Config.SpotCheckTriples; ++K) {
      std::uint64_t H = support::auditHash(Salt ^ (0x100000001b3ull * (K + 1)));
      unsigned I = static_cast<unsigned>(H % D);
      unsigned J = static_cast<unsigned>((H >> 21) % D);
      unsigned Via = static_cast<unsigned>((H >> 42) % D);
      double Direct = entry(I, J);
      double Leg1 = entry(I, Via), Leg2 = entry(Via, J);
      double ViaSum = boundAdd(Leg1, Leg2);
      if (!leqWithTolerance(Direct, ViaSum)) {
        Defect = "closedness violation " + describeCell(I, J, Direct) +
                 " > m[" + std::to_string(I) + "][" + std::to_string(Via) +
                 "] + m[" + std::to_string(Via) + "][" + std::to_string(J) +
                 "] = " + std::to_string(ViaSum);
        return false;
      }
    }
  }
  return true;
}

void Octagon::adoptReferenceClosure(const FullDbm &Ref) {
  Ref.toHalf(M);
  Empty = false;
  Closed = true;
  FullyInit = true;
  NniExplicit = M.countFinite();
  P = octConfig().EnableDecomposition ? extractPartition(M)
                                      : Partition::whole(numVars());
  reclassify();
}

void Octagon::closeAudited() {
  // Pre-closure snapshot, taken through entry() so the implicit trivial
  // entries of partial kinds materialize as +inf/0: the exact input the
  // reference closure needs for recovery or cross-checking.
  const unsigned D = 2 * numVars();
  FullDbm Input(numVars());
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J != D; ++J)
      Input.at(I, J) = I == J ? 0.0 : entry(I, J);
  const bool CrossCheck = support::auditShouldCrossCheck();

  closeInner();

  support::AuditLog *Log = support::auditLogSink();
  if (Log)
    Log->recordValidation();

  // Corruption hook for the audit tests: a PoisonBound rule here lands
  // NaN in a live cell of the *closed* result, downstream of every
  // sanitizing layer — exactly the silent-corruption shape (bit flip,
  // vectorization bug) the audit exists to catch.
  if (!Empty && !P.empty()) {
    unsigned U = P.component(0)[0];
    support::faultPoint("closure.result", &M.at(2 * U + 1, 2 * U));
  } else {
    support::faultPoint("closure.result");
  }

  std::string Defect;
  if (!auditValidate(Defect)) {
    // Discard the corrupt DBM: recompute from the snapshot via the
    // reference path, and continue soundly.
    if (Log)
      Log->recordIncident("closure.validate", Defect);
    FullDbm Ref = Input;
    if (closureFullReference(Ref))
      adoptReferenceClosure(Ref);
    else
      markEmpty();
    return;
  }

  if (!CrossCheck)
    return;
  if (Log)
    Log->recordCrossCheck();
  FullDbm Ref = Input;
  bool RefNonEmpty = closureFullReference(Ref);
  std::string Mismatch;
  if (Empty != !RefNonEmpty)
    Mismatch = Empty ? "optimized closure reports empty, reference does not"
                     : "reference closure reports empty, optimized does not";
  else if (!Empty)
    for (unsigned I = 0; I != D && Mismatch.empty(); ++I)
      for (unsigned J = 0; J != D; ++J) {
        if (I == J)
          continue;
        if (!boundsAgree(entry(I, J), Ref.at(I, J))) {
          Mismatch = "optimized " + describeCell(I, J, entry(I, J)) +
                     " vs reference " + describeCell(I, J, Ref.at(I, J));
          break;
        }
      }
  if (Mismatch.empty())
    return;
  if (Log)
    Log->recordIncident("closure.crosscheck", Mismatch);
  // The independent implementations disagree; trust the executable
  // specification (Algorithm 1) and adopt its result.
  if (RefNonEmpty)
    adoptReferenceClosure(Ref);
  else
    markEmpty();
}

//===----------------------------------------------------------------------===//
// Incremental closure (Section 5.6)
//===----------------------------------------------------------------------===//

void Octagon::incrementalClose(const std::vector<unsigned> &Touched) {
  if (Empty)
    return;
  if (FullyInit && (P.isWhole() || !octConfig().EnableDecomposition)) {
    if (!incrementalClosureDense(M, Touched, scratch())) {
      markEmpty();
      return;
    }
    if (Kind == DbmKind::Dense)
      NniExplicit = M.size(); // dense over-approximation (Section 4.1)
    else
      NniExplicit = M.countFinite();
    Closed = true;
    return;
  }

  // Decomposed: the touched variables already share one component with
  // everything the new constraints relate them to; run restricted pivot
  // passes there, then the global strengthening phase.
  std::vector<std::size_t> TouchedComps;
  for (unsigned V : Touched) {
    int C = P.componentOf(V);
    if (C >= 0)
      TouchedComps.push_back(static_cast<std::size_t>(C));
  }
  std::sort(TouchedComps.begin(), TouchedComps.end());
  TouchedComps.erase(std::unique(TouchedComps.begin(), TouchedComps.end()),
                     TouchedComps.end());
  for (std::size_t C : TouchedComps) {
    const std::vector<unsigned> &Vars = P.component(C);
    std::vector<unsigned> Local;
    for (unsigned V : Touched)
      if (P.componentOf(V) == static_cast<int>(C))
        Local.push_back(V);
    incrementalClosureRestricted(M, Vars, Local, scratch());
  }
  strengthenAndMerge();

  std::vector<unsigned> Covered = P.sortedVars();
  for (unsigned V : Covered)
    if (M.at(2 * V, 2 * V) < 0.0 || M.at(2 * V + 1, 2 * V + 1) < 0.0) {
      markEmpty();
      return;
    }
  for (unsigned V : Covered) {
    M.at(2 * V, 2 * V) = 0.0;
    M.at(2 * V + 1, 2 * V + 1) = 0.0;
  }
  // Recount nni within the affected components (cheap relative to the
  // pivot passes); untouched components kept their counts, but a full
  // per-component recount keeps the bookkeeping simple and exact.
  std::size_t Nni = 0;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Nni += isFinite(M.at(2 * Vars[A] + R, 2 * Vars[B] + S));
  }
  if (FullyInit)
    Nni += 2 * (numVars() - P.coveredVars());
  NniExplicit = Nni;
  Closed = true;
}
