//===- oct/octagon.cpp - The OptOctagon abstract domain ------------------===//

#include "oct/octagon.h"

#include "oct/closure_dense.h"
#include "oct/closure_incremental.h"
#include "oct/closure_sparse.h"
#include "oct/config.h"
#include "oct/vector_min.h"
#include "support/budget.h"
#include "support/faultinject.h"
#include "support/timing.h"

#include <algorithm>
#include <cstdio>

using namespace optoct;

OctConfig &optoct::octConfig() {
  static OctConfig Config;
  return Config;
}

// Per-thread: each analysis thread installs its own sink, so concurrent
// engines (src/runtime) never share a statistics object.
static thread_local OctStats *StatsSink = nullptr;

void optoct::setOctStatsSink(OctStats *Sink) { StatsSink = Sink; }
OctStats *optoct::octStatsSink() { return StatsSink; }

ClosureScratch &Octagon::scratch() {
  static thread_local ClosureScratch S;
  return S;
}

void optoct::reserveClosureScratch(unsigned NumVars) {
  ClosureScratch &S = Octagon::scratch();
  S.ensure(2 * NumVars);
  S.DenseTmp.resizeDiscard(NumVars);
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Octagon::Octagon(unsigned NumVars, PrivateTag)
    : M(NumVars), P(NumVars), Kind(DbmKind::Top), Closed(false) {
  support::chargeDbmCells(M.size());
}

Octagon::Octagon(unsigned NumVars) : M(NumVars), P(NumVars) {
  support::faultPoint("oct.alloc");
  support::chargeDbmCells(M.size());
  if (octConfig().EnableDecomposition) {
    // Top type (Section 3.4): the matrix is allocated but left
    // uninitialized; the empty partition makes every entry implicitly
    // trivial.
    Kind = DbmKind::Top;
    Closed = true;
    return;
  }
  // Decomposition disabled (ablation): everything is a whole-matrix
  // octagon, fully materialized from the start.
  M.initTop();
  P = Partition::whole(NumVars);
  Kind = DbmKind::Dense;
  FullyInit = true;
  Closed = true;
  NniExplicit = 2 * static_cast<std::size_t>(NumVars);
}

Octagon Octagon::makeBottom(unsigned NumVars) {
  Octagon O(NumVars);
  O.markEmpty();
  return O;
}

void Octagon::markEmpty() {
  Empty = true;
  Closed = true;
}

//===----------------------------------------------------------------------===//
// Entry access and simple queries
//===----------------------------------------------------------------------===//

double Octagon::entry(unsigned I, unsigned J) const {
  assert(!Empty && "entry() on the empty octagon");
  if (FullyInit)
    return M.get(I, J);
  if (I == J)
    return 0.0;
  unsigned U = I / 2, V = J / 2;
  if (U == V)
    return P.contains(U) ? M.get(I, J) : Infinity;
  int CU = P.componentOf(U);
  if (CU < 0 || CU != P.componentOf(V))
    return Infinity;
  return M.get(I, J);
}

std::size_t Octagon::nni() const {
  if (FullyInit)
    return NniExplicit;
  // Uncovered variables contribute their two implicit diagonal zeros.
  return NniExplicit + 2 * (numVars() - P.coveredVars());
}

double Octagon::sparsity() const {
  unsigned N = numVars();
  std::size_t Total = HalfDbm::matSize(N);
  if (Total == 0)
    return 0.0;
  return 1.0 - static_cast<double>(nni()) / static_cast<double>(Total);
}

bool Octagon::isBottom() {
  close();
  return Empty;
}

//===----------------------------------------------------------------------===//
// Lazy initialization of component entries
//===----------------------------------------------------------------------===//

void Octagon::setEntry(unsigned I, unsigned J, double Value) {
  double Old = M.get(I, J);
  M.set(I, J, Value);
  NniExplicit += static_cast<std::size_t>(isFinite(Value)) -
                 static_cast<std::size_t>(isFinite(Old));
}

int Octagon::mergeComponentsInit(const std::vector<std::size_t> &CompIndices) {
  if (!FullyInit) {
    // Initialize the cross entries between every pair of distinct
    // blocks being merged (Section 3: trivial entries are inserted only
    // when needed). Each covered variable's own block entries are
    // already valid.
    for (std::size_t A = 0; A != CompIndices.size(); ++A)
      for (std::size_t B = 0; B != A; ++B) {
        if (CompIndices[A] == CompIndices[B])
          continue;
        for (unsigned U : P.component(CompIndices[A]))
          for (unsigned V : P.component(CompIndices[B]))
            M.initPairTrivial(U, V);
      }
  }
  return P.mergeComponents(CompIndices);
}

void Octagon::relateInit(unsigned U, unsigned V) {
  if (!octConfig().EnableDecomposition)
    return; // partition is permanently whole
  int CU = P.componentOf(U);
  if (CU < 0) {
    if (!FullyInit)
      M.initPairTrivial(U, U);
    NniExplicit += 2; // the two diagonal zeros become explicit
    CU = static_cast<int>(P.addSingleton(U));
  }
  if (U == V)
    return;
  int CV = P.componentOf(V);
  if (CV < 0) {
    if (!FullyInit)
      M.initPairTrivial(V, V);
    NniExplicit += 2;
    CV = static_cast<int>(P.addSingleton(V));
  }
  if (CU != CV)
    mergeComponentsInit({static_cast<std::size_t>(CU),
                         static_cast<std::size_t>(CV)});
}

void Octagon::materialize() {
  if (FullyInit)
    return;
  unsigned N = numVars();
  for (unsigned U = 0; U != N; ++U) {
    if (!P.contains(U))
      M.initPairTrivial(U, U);
    int CU = P.componentOf(U);
    for (unsigned V = 0; V != U; ++V) {
      int CV = P.componentOf(V);
      if (CU < 0 || CU != CV)
        M.initPairTrivial(U, V);
    }
  }
  NniExplicit += 2 * (N - P.coveredVars());
  FullyInit = true;
}

//===----------------------------------------------------------------------===//
// Closure dispatch (Section 5)
//===----------------------------------------------------------------------===//

void Octagon::close() {
  if (Closed || Empty)
    return;
  std::uint64_t Begin = StatsSink ? readCycles() : 0;
  int Tag;

  // A whole partition means every pair lies inside the single
  // component, so the buffer is in fact fully initialized.
  if (P.isWhole() && !FullyInit)
    FullyInit = true;

  if (P.empty()) {
    // Top closure (Section 5.5): nothing to minimize.
    Kind = DbmKind::Top;
    Tag = CK_Top;
  } else if (!octConfig().EnableDecomposition || P.isWhole()) {
    Tag = sparsity() >= octConfig().SparsityThreshold &&
                  octConfig().EnableSparse
              ? CK_Sparse
              : CK_Dense;
    closeMonolithic();
  } else {
    Tag = CK_Decomposed;
    closeDecomposed();
  }

  Closed = true;
  if (StatsSink)
    StatsSink->recordClosure(readCycles() - Begin, numVars(), Tag);
}

void Octagon::closeMonolithic() {
  assert(FullyInit && "monolithic closure needs a materialized matrix");
  OctConfig &Cfg = octConfig();
  if (Cfg.EnableSparse && sparsity() >= Cfg.SparsityThreshold) {
    std::size_t Nni = 0;
    if (!closureSparse(M, scratch(), Nni)) {
      markEmpty();
      return;
    }
    NniExplicit = Nni;
    // Piggyback the exact recomputation of the independent components
    // on the sparse closure (Section 3.5).
    if (Cfg.EnableDecomposition)
      P = extractPartition(M);
    reclassify();
    return;
  }
  if (!closureDense(M, scratch())) {
    markEmpty();
    return;
  }
  // Dense operators over-approximate nni as 2n^2+2n (Section 4.1).
  NniExplicit = M.size();
  reclassify();
}

void Octagon::closeDecomposed() {
  OctConfig &Cfg = octConfig();

  // Shortest-path closure per component; it cannot connect variables in
  // different components (Section 5.4).
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    // Decide dense vs sparse from the submatrix's own sparsity,
    // computed on the fly before each closure (Section 3.3).
    std::size_t SubSize = HalfDbm::matSize(static_cast<unsigned>(Vars.size()));
    std::size_t SubNni = 0;
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B) {
        unsigned Hi = Vars[A], Lo = Vars[B];
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            SubNni += isFinite(M.at(2 * Hi + R, 2 * Lo + S));
      }
    double SubD =
        1.0 - static_cast<double>(SubNni) / static_cast<double>(SubSize);

    if (Cfg.EnableSparse && SubD >= Cfg.SparsityThreshold) {
      shortestPathSparseRestricted(M, Vars, scratch());
      continue;
    }
    // Dense submatrix: copy into a contiguous temporary so the
    // vectorized Algorithm 3 applies, then copy back (Section 4.3). The
    // temp lives in the per-thread scratch so repeated closures (and
    // batched jobs on the same worker) reuse one allocation.
    unsigned SubN = static_cast<unsigned>(Vars.size());
    HalfDbm &Tmp = scratch().DenseTmp;
    Tmp.resizeDiscard(SubN);
    for (unsigned A = 0; A != SubN; ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Tmp.at(2 * A + R, 2 * B + S) =
                M.at(2 * Vars[A] + R, 2 * Vars[B] + S);
    shortestPathDense(Tmp, scratch());
    for (unsigned A = 0; A != SubN; ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            M.at(2 * Vars[A] + R, 2 * Vars[B] + S) =
                Tmp.at(2 * A + R, 2 * B + S);
  }

  strengthenAndMerge();

  // Emptiness check over the covered diagonal, then normalize it.
  std::vector<unsigned> Covered = P.sortedVars();
  for (unsigned V : Covered)
    if (M.at(2 * V, 2 * V) < 0.0 || M.at(2 * V + 1, 2 * V + 1) < 0.0) {
      markEmpty();
      return;
    }
  for (unsigned V : Covered) {
    M.at(2 * V, 2 * V) = 0.0;
    M.at(2 * V + 1, 2 * V + 1) = 0.0;
  }

  // Exact recomputation of the components within each (possibly merged)
  // block, then recount nni (Section 3.5).
  Partition NewP(numVars());
  std::size_t Nni = 0;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    Partition Sub = extractPartition(M, P.component(C));
    for (std::size_t S = 0; S != Sub.numComponents(); ++S) {
      const std::vector<unsigned> &Block = Sub.component(S);
      NewP.addSingleton(Block[0]);
      for (std::size_t I = 1; I < Block.size(); ++I)
        NewP.relate(Block[0], Block[I]);
    }
  }
  P = std::move(NewP);
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Nni += isFinite(M.at(2 * Vars[A] + R, 2 * Vars[B] + S));
  }
  if (FullyInit)
    Nni += 2 * (numVars() - P.coveredVars());
  NniExplicit = Nni;
  reclassify();
}

void Octagon::strengthenAndMerge() {
  // Components holding a finite unary (diagonal-block) bound: only those
  // participate in strengthening, and in the faithful 2015 semantics
  // they merge into a single component (Section 5.4).
  std::vector<std::size_t> Bounded;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    for (unsigned V : P.component(C))
      if (isFinite(M.at(2 * V, 2 * V + 1)) ||
          isFinite(M.at(2 * V + 1, 2 * V))) {
        Bounded.push_back(C);
        break;
      }
  }
  if (Bounded.empty())
    return;

  if (octConfig().LazyStrengthening) {
    // Extension: strengthen within each component only, leaving the
    // entailed cross-component constraints implicit.
    for (std::size_t C : Bounded)
      strengthenSparseRestricted(M, P.component(C), scratch());
    return;
  }

  int Merged = mergeComponentsInit(Bounded);
  assert(Merged >= 0 && "merge of a non-empty list cannot fail");
  // The merged submatrix is likely sparse: use the sparse strengthening
  // (Section 5.4).
  strengthenSparseRestricted(M, P.component(static_cast<std::size_t>(Merged)),
                             scratch());
}

void Octagon::reclassify() {
  if (Empty)
    return;
  unsigned N = numVars();
  if (!octConfig().EnableDecomposition) {
    Kind = sparsity() >= octConfig().SparsityThreshold ? DbmKind::Sparse
                                                       : DbmKind::Dense;
    return;
  }
  if (P.empty()) {
    Kind = DbmKind::Top;
    return;
  }
  if (sparsity() < octConfig().SparsityThreshold) {
    // Switch to the Dense type (Section 3.5): requires a fully
    // initialized matrix.
    materialize();
    P = Partition::whole(N);
    Kind = DbmKind::Dense;
    return;
  }
  Kind = P.isWhole() || (P.numComponents() == 1 && FullyInit)
             ? DbmKind::Sparse
             : DbmKind::Decomposed;
}

//===----------------------------------------------------------------------===//
// Incremental closure (Section 5.6)
//===----------------------------------------------------------------------===//

void Octagon::incrementalClose(const std::vector<unsigned> &Touched) {
  if (Empty)
    return;
  if (FullyInit && (P.isWhole() || !octConfig().EnableDecomposition)) {
    if (!incrementalClosureDense(M, Touched, scratch())) {
      markEmpty();
      return;
    }
    if (Kind == DbmKind::Dense)
      NniExplicit = M.size(); // dense over-approximation (Section 4.1)
    else
      NniExplicit = M.countFinite();
    Closed = true;
    return;
  }

  // Decomposed: the touched variables already share one component with
  // everything the new constraints relate them to; run restricted pivot
  // passes there, then the global strengthening phase.
  std::vector<std::size_t> TouchedComps;
  for (unsigned V : Touched) {
    int C = P.componentOf(V);
    if (C >= 0)
      TouchedComps.push_back(static_cast<std::size_t>(C));
  }
  std::sort(TouchedComps.begin(), TouchedComps.end());
  TouchedComps.erase(std::unique(TouchedComps.begin(), TouchedComps.end()),
                     TouchedComps.end());
  for (std::size_t C : TouchedComps) {
    const std::vector<unsigned> &Vars = P.component(C);
    std::vector<unsigned> Local;
    for (unsigned V : Touched)
      if (P.componentOf(V) == static_cast<int>(C))
        Local.push_back(V);
    incrementalClosureRestricted(M, Vars, Local, scratch());
  }
  strengthenAndMerge();

  std::vector<unsigned> Covered = P.sortedVars();
  for (unsigned V : Covered)
    if (M.at(2 * V, 2 * V) < 0.0 || M.at(2 * V + 1, 2 * V + 1) < 0.0) {
      markEmpty();
      return;
    }
  for (unsigned V : Covered) {
    M.at(2 * V, 2 * V) = 0.0;
    M.at(2 * V + 1, 2 * V + 1) = 0.0;
  }
  // Recount nni within the affected components (cheap relative to the
  // pivot passes); untouched components kept their counts, but a full
  // per-component recount keeps the bookkeeping simple and exact.
  std::size_t Nni = 0;
  for (std::size_t C = 0, E = P.numComponents(); C != E; ++C) {
    const std::vector<unsigned> &Vars = P.component(C);
    for (unsigned A = 0; A != Vars.size(); ++A)
      for (unsigned B = 0; B <= A; ++B)
        for (unsigned R = 0; R != 2; ++R)
          for (unsigned S = 0; S != 2; ++S)
            Nni += isFinite(M.at(2 * Vars[A] + R, 2 * Vars[B] + S));
  }
  if (FullyInit)
    Nni += 2 * (numVars() - P.coveredVars());
  NniExplicit = Nni;
  Closed = true;
}
