//===- oct/closure_dense.h - Optimized dense closure ------------*- C++ -*-===//
///
/// \file
/// The paper's dense closure (Section 5.2, Algorithm 3) on the packed
/// half representation:
///
///   * Operation-count halving: the 2k-th and (2k+1)-th Floyd-Warshall
///     iterations are fused into a single iteration k of the outer loop.
///     The entries of rows/columns 2k and 2k+1 are updated first — these
///     need operands only from the lower triangle, so the asymmetry issue
///     that forces APRON to do two extra min operations per iteration
///     never arises — after which the remaining entries can be updated in
///     any order with exactly two min operations each.
///   * Locality of reference: the updated pivot columns are stored in
///     contiguous arrays (and, by coherence, yield the pivot rows by an
///     xor-of-index permutation) before the remaining entries are
///     updated, so the inner loop streams sequentially instead of
///     walking columns.
///   * Scalar replacement: the two column operands of a row are loaded
///     once per row.
///   * Vectorization: the inner update and the strengthening step run on
///     AVX kernels (vector_min.h).
///
/// Total operation count: 8n^3 + O(n^2) min operations versus
/// 16n^3 + O(n^2) for APRON's Algorithm 2.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CLOSURE_DENSE_H
#define OPTOCT_OCT_CLOSURE_DENSE_H

#include "oct/closure_common.h"
#include "oct/dbm.h"

namespace optoct {

/// Shortest-path step of Algorithm 3 on a fully initialized half DBM.
void shortestPathDense(HalfDbm &M, ClosureScratch &Scratch);

/// Vectorized strengthening on a fully initialized half DBM.
void strengthenDense(HalfDbm &M, ClosureScratch &Scratch);

/// Full strong closure: shortest path + strengthening + emptiness check.
/// Returns false if the octagon is empty; on true the matrix is strongly
/// closed with a zero diagonal.
bool closureDense(HalfDbm &M, ClosureScratch &Scratch);

} // namespace optoct

#endif // OPTOCT_OCT_CLOSURE_DENSE_H
