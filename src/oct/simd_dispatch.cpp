//===- oct/simd_dispatch.cpp - Startup SIMD tier selection ---------------===//

#include "oct/simd_dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace optoct;

namespace optoct::detail {

// Constinit: valid before any dynamic initializer runs, so even kernel
// calls from other TUs' static constructors dispatch safely (to scalar).
constinit std::atomic<const SpanKernels *> ActiveSpanKernels{
    &SpanKernelsScalar};

} // namespace optoct::detail

const char *optoct::simdTierName(SimdTier Tier) {
  switch (Tier) {
  case SimdTier::Scalar:
    return "scalar";
  case SimdTier::Avx2:
    return "avx2";
  case SimdTier::Avx512:
    return "avx512";
  }
  return "scalar";
}

bool optoct::simdParseTier(const char *Value, SimdTier &Tier) {
  if (!Value)
    return false;
  if (std::strcmp(Value, "scalar") == 0) {
    Tier = SimdTier::Scalar;
    return true;
  }
  if (std::strcmp(Value, "avx2") == 0) {
    Tier = SimdTier::Avx2;
    return true;
  }
  if (std::strcmp(Value, "avx512") == 0) {
    Tier = SimdTier::Avx512;
    return true;
  }
  return false;
}

bool optoct::simdTierSupported(SimdTier Tier) {
  switch (Tier) {
  case SimdTier::Scalar:
    return true;
#if OPTOCT_SIMD_X86
  case SimdTier::Avx2:
    return __builtin_cpu_supports("avx2");
  case SimdTier::Avx512:
    // libgcc's probe already checks XCR0, so "supported" implies the OS
    // saves the zmm state, not just that the CPU has the silicon.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl");
#endif
  default:
    return false;
  }
}

SimdTier optoct::simdBestTier() {
  if (simdTierSupported(SimdTier::Avx512))
    return SimdTier::Avx512;
  if (simdTierSupported(SimdTier::Avx2))
    return SimdTier::Avx2;
  return SimdTier::Scalar;
}

SimdTier optoct::simdSelectTier(const char *EnvValue, std::string *LogOut) {
  SimdTier Best = simdBestTier();
  if (!EnvValue || !*EnvValue)
    return Best;
  SimdTier Requested;
  if (!simdParseTier(EnvValue, Requested)) {
    if (LogOut)
      *LogOut = std::string("optoct: ignoring unknown OPTOCT_SIMD value \"") +
                EnvValue + "\" (expected scalar|avx2|avx512); using " +
                simdTierName(Best) + "\n";
    return Best;
  }
  if (simdTierSupported(Requested))
    return Requested;
  // An explicit request that the machine cannot honor: degrade to the
  // best supported tier and say so — perf reports from the field must
  // name the tier actually running.
  SimdTier Fallback = Requested > Best ? Best : SimdTier::Scalar;
  if (LogOut)
    *LogOut = std::string("optoct: OPTOCT_SIMD=") + EnvValue +
              " not supported on this cpu; downgrading to " +
              simdTierName(Fallback) + "\n";
  return Fallback;
}

namespace {

const SpanKernels &tableFor(SimdTier Tier) {
  switch (Tier) {
#if OPTOCT_SIMD_X86
  case SimdTier::Avx2:
    return SpanKernelsAvx2;
  case SimdTier::Avx512:
    return SpanKernelsAvx512;
#endif
  default:
    return SpanKernelsScalar;
  }
}

/// Runs during dynamic initialization, while the process is still
/// single-threaded; every later read of the active table is relaxed.
const bool StartupSelected = [] {
  simdResetTier();
  return true;
}();

} // namespace

SimdTier optoct::activeSimdTier() {
  const SpanKernels *Active = detail::ActiveSpanKernels.load();
#if OPTOCT_SIMD_X86
  if (Active == &SpanKernelsAvx512)
    return SimdTier::Avx512;
  if (Active == &SpanKernelsAvx2)
    return SimdTier::Avx2;
#endif
  (void)Active;
  return SimdTier::Scalar;
}

SimdTier optoct::simdForceTier(SimdTier Tier) {
  if (!simdTierSupported(Tier))
    Tier = simdBestTier() < Tier ? simdBestTier() : SimdTier::Scalar;
  detail::ActiveSpanKernels.store(&tableFor(Tier));
  return Tier;
}

SimdTier optoct::simdResetTier() {
  std::string Log;
  SimdTier Tier = simdSelectTier(std::getenv("OPTOCT_SIMD"), &Log);
  if (!Log.empty())
    std::fputs(Log.c_str(), stderr);
  detail::ActiveSpanKernels.store(&tableFor(Tier));
  return Tier;
}
