//===- oct/vector_ops.h - Vectorized lattice-operator kernels --*- C++ -*-===//
///
/// \file
/// Span kernels for the quadratic lattice operators (join, meet,
/// widening, narrowing, inclusion, equality). The paper applies its
/// processor-level optimizations to *all* octagon operators, not just
/// closure: each operator is a pointwise map or fold over the packed
/// half-DBM storage, so for row i the stored span j in [0, i|1] is one
/// contiguous run and the whole Dense case is a single flat pass over
/// the 2n(n+1) buffer (oct/octagon_ops.cpp drives these kernels over
/// contiguous blocked component layouts in the Decomposed case).
///
/// Since the runtime-dispatch rework these are thin wrappers over the
/// per-ISA kernel table (oct/simd_kernels.h): scalar, AVX2, and AVX-512
/// bodies live in their own translation units and simd_dispatch.h picks
/// one at startup. Conventions shared by every kernel, unchanged:
///   * All tiers are bitwise-identical in outputs *and* in the returned
///     finite-entry counts (tests/test_vector_ops.cpp and
///     tests/test_simd_dispatch.cpp enforce it), so neither the tier
///     nor OPTOCT_SIMD ever changes an analysis result, only its speed.
///   * Counting kernels return the number of finite entries written
///     (popcount on the lanewise finiteness mask) so the operators can
///     maintain nni exactly without a second scan over the result.
///   * Unaligned loads throughout: packed half-DBM rows start at
///     arbitrary offsets.
///   * These wrappers do NOT consult octConfig().EnableVectorization:
///     the operators dispatch on that flag one level up (with
///     vectorization off they run the original pointwise
///     implementations, never these kernels), so the check here would
///     only tax the hot path. The ablation contract lives in the
///     operator legs; the kernel-level scalar/vector contract lives in
///     the tier tables.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VECTOR_OPS_H
#define OPTOCT_OCT_VECTOR_OPS_H

#include "oct/simd_dispatch.h"

#include <cstddef>

namespace optoct {

/// Dst[j] = max(A[j], B[j]) for j in [0, Len): the join operator's span
/// map. Two-source (not in-place) so the Dense/Dense join is one pass
/// with no preparatory buffer copy.
inline void maxSpan(double *Dst, const double *A, const double *B,
                    std::size_t Len) {
  activeSpanKernels().MaxSpan(Dst, A, B, Len);
}

/// Dst[j] = min(A[j], B[j]) for j in [0, Len): the meet operator's span
/// map (two-source variant of vector_min.h's in-place minRows).
inline void minSpan(double *Dst, const double *A, const double *B,
                    std::size_t Len) {
  activeSpanKernels().MinSpan(Dst, A, B, Len);
}

/// maxSpan returning the number of finite entries written, for the
/// component paths that must keep nni exact.
inline std::size_t maxSpanCount(double *Dst, const double *A, const double *B,
                                std::size_t Len) {
  return activeSpanKernels().MaxSpanCount(Dst, A, B, Len);
}

/// minSpan returning the number of finite entries written.
inline std::size_t minSpanCount(double *Dst, const double *A, const double *B,
                                std::size_t Len) {
  return activeSpanKernels().MinSpanCount(Dst, A, B, Len);
}

/// Standard-narrowing span: Dst[j] = Old[j] if finite, else New[j]
/// (refine only the unbounded entries). Returns the finite count.
inline std::size_t narrowSpanCount(double *Dst, const double *OldS,
                                   const double *NewS, std::size_t Len) {
  return activeSpanKernels().NarrowSpanCount(Dst, OldS, NewS, Len);
}

/// Widening span: a bound survives iff it did not grow (New <= Old);
/// growing bounds jump to the smallest dominating threshold in the
/// sorted array [Thr, Thr+ThrN) or to +inf. The threshold-set choice
/// (binary thresholds vs the doubled unary ones) is hoisted to the call
/// site — octagon_ops.cpp runs blocked batches under the binary set and
/// patches the unary diagonal-block slots afterwards — and the
/// threshold scan runs only for lanes that actually grew. Returns the
/// finite count.
inline std::size_t widenSpanCount(double *Dst, const double *OldS,
                                  const double *NewS, std::size_t Len,
                                  const double *Thr, std::size_t ThrN) {
  return activeSpanKernels().WidenSpanCount(Dst, OldS, NewS, Len, Thr, ThrN);
}

/// True iff A[j] <= B[j] for all j in [0, Len): the inclusion test's
/// span predicate. Early-exits on the first vector block containing a
/// violating lane.
inline bool spanLeq(const double *A, const double *B, std::size_t Len) {
  return activeSpanKernels().SpanLeq(A, B, Len);
}

/// True iff A[j] == B[j] for all j in [0, Len): the equality test's
/// span predicate, with the same first-violating-lane early exit.
inline bool spanEq(const double *A, const double *B, std::size_t Len) {
  return activeSpanKernels().SpanEq(A, B, Len);
}

} // namespace optoct

#endif // OPTOCT_OCT_VECTOR_OPS_H
