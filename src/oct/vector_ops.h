//===- oct/vector_ops.h - Vectorized lattice-operator kernels --*- C++ -*-===//
///
/// \file
/// Span kernels for the quadratic lattice operators (join, meet,
/// widening, narrowing, inclusion, equality). The paper applies its
/// processor-level optimizations to *all* octagon operators, not just
/// closure: each operator is a pointwise map or fold over the packed
/// half-DBM storage, so for row i the stored span j in [0, i|1] is one
/// contiguous run and the whole Dense case is a single flat pass over
/// the 2n(n+1) buffer (oct/octagon_ops.cpp drives these kernels over
/// per-component row runs in the Decomposed case).
///
/// Conventions shared by every kernel:
///   * AVX body behind octConfig().EnableVectorization, with a scalar
///     fallback that the compiler is forbidden to auto-vectorize
///     (OPTOCT_SCALAR_LOOP / the GCC optimize attribute) — the ablation
///     benchmarks rely on the fallback being genuinely scalar. (The
///     operators additionally dispatch on the same flag one level up:
///     with vectorization off they run the original pointwise
///     implementations rather than these kernels' scalar tails.)
///   * Kernel scalar and vector paths are bitwise-identical in outputs
///     *and* in the returned finite-entry counts, and the two operator
///     legs agree on every observable (tests/test_vector_ops.cpp
///     enforces both), so flipping EnableVectorization never changes an
///     analysis result, only its speed.
///   * Counting kernels return the number of finite entries written
///     (popcount on the lanewise finiteness mask) so the operators can
///     maintain nni exactly without a second scan over the result.
///   * Unaligned loads throughout: packed half-DBM rows start at
///     arbitrary offsets.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VECTOR_OPS_H
#define OPTOCT_OCT_VECTOR_OPS_H

#include "oct/config.h"
#include "oct/value.h"

#include <algorithm>
#include <cstddef>

#if defined(__AVX__)
#include <immintrin.h>
#endif

/// The scalar fallbacks double as the ablation baseline, so -O3 must
/// not silently turn them back into SIMD: on GCC the whole kernel is
/// compiled with auto-vectorization off (the intrinsic bodies are
/// unaffected — they are explicit builtins, not loop transforms), on
/// Clang the loops carry a vectorize(disable) pragma.
#if defined(__clang__)
#define OPTOCT_SCALAR_KERNEL
#define OPTOCT_SCALAR_LOOP                                                     \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define OPTOCT_SCALAR_KERNEL                                                   \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define OPTOCT_SCALAR_LOOP
#else
#define OPTOCT_SCALAR_KERNEL
#define OPTOCT_SCALAR_LOOP
#endif

namespace optoct {

#if defined(__AVX__)
namespace detail {
/// Number of lanes of \p V holding a finite bound (!= +inf; matches
/// isFinite, which deliberately counts -inf and NaN as "finite").
inline int finiteLanes(__m256d V) {
  __m256d Inf = _mm256_set1_pd(Infinity);
  return __builtin_popcount(
      _mm256_movemask_pd(_mm256_cmp_pd(V, Inf, _CMP_NEQ_UQ)));
}
} // namespace detail
#endif

/// Dst[j] = max(A[j], B[j]) for j in [0, Len): the join operator's span
/// map. Two-source (not in-place) so the Dense/Dense join is one pass
/// with no preparatory buffer copy.
OPTOCT_SCALAR_KERNEL
inline void maxSpan(double *Dst, const double *A, const double *B,
                    std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      _mm256_storeu_pd(Dst + J, _mm256_max_pd(VA, VB));
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    // VB on ties, like MAXPD, so scalar and vector agree bitwise.
    Dst[J] = VA > VB ? VA : VB;
  }
}

/// Dst[j] = min(A[j], B[j]) for j in [0, Len): the meet operator's span
/// map (two-source variant of vector_min.h's in-place minRows).
OPTOCT_SCALAR_KERNEL
inline void minSpan(double *Dst, const double *A, const double *B,
                    std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      _mm256_storeu_pd(Dst + J, _mm256_min_pd(VA, VB));
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    Dst[J] = VA < VB ? VA : VB;
  }
}

/// maxSpan returning the number of finite entries written, for the
/// component paths that must keep nni exact.
OPTOCT_SCALAR_KERNEL
inline std::size_t maxSpanCount(double *Dst, const double *A, const double *B,
                                std::size_t Len) {
  std::size_t J = 0, Count = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      __m256d D = _mm256_max_pd(VA, VB);
      _mm256_storeu_pd(Dst + J, D);
      Count += detail::finiteLanes(D);
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA > VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

/// minSpan returning the number of finite entries written.
OPTOCT_SCALAR_KERNEL
inline std::size_t minSpanCount(double *Dst, const double *A, const double *B,
                                std::size_t Len) {
  std::size_t J = 0, Count = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      __m256d D = _mm256_min_pd(VA, VB);
      _mm256_storeu_pd(Dst + J, D);
      Count += detail::finiteLanes(D);
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA < VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

/// Standard-narrowing span: Dst[j] = Old[j] if finite, else New[j]
/// (refine only the unbounded entries). Returns the finite count.
OPTOCT_SCALAR_KERNEL
inline std::size_t narrowSpanCount(double *Dst, const double *OldS,
                                   const double *NewS, std::size_t Len) {
  std::size_t J = 0, Count = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    __m256d Inf = _mm256_set1_pd(Infinity);
    for (; J + 4 <= Len; J += 4) {
      __m256d VO = _mm256_loadu_pd(OldS + J);
      __m256d VN = _mm256_loadu_pd(NewS + J);
      __m256d FiniteOld = _mm256_cmp_pd(VO, Inf, _CMP_NEQ_UQ);
      __m256d D = _mm256_blendv_pd(VN, VO, FiniteOld);
      _mm256_storeu_pd(Dst + J, D);
      Count += detail::finiteLanes(D);
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VO = OldS[J];
    double V = isFinite(VO) ? VO : NewS[J];
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

/// Widening span: a bound survives iff it did not grow (New <= Old);
/// growing bounds jump to the smallest dominating threshold in the
/// sorted array [Thr, Thr+ThrN) or to +inf. The threshold-set choice
/// (binary thresholds vs the doubled unary ones) is hoisted to the call
/// site — octagon_ops.cpp passes the unary diagonal-block columns as
/// their own 2-wide spans — and the binary search runs only for lanes
/// that actually grew: fully stable vector blocks, and all blocks under
/// empty thresholds, never touch the threshold array at all. Returns
/// the finite count.
OPTOCT_SCALAR_KERNEL
inline std::size_t widenSpanCount(double *Dst, const double *OldS,
                                  const double *NewS, std::size_t Len,
                                  const double *Thr, std::size_t ThrN) {
  std::size_t J = 0, Count = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    __m256d Inf = _mm256_set1_pd(Infinity);
    for (; J + 4 <= Len; J += 4) {
      __m256d VO = _mm256_loadu_pd(OldS + J);
      __m256d VN = _mm256_loadu_pd(NewS + J);
      __m256d Stable = _mm256_cmp_pd(VN, VO, _CMP_LE_OQ);
      if (ThrN == 0 || _mm256_movemask_pd(Stable) == 0xF) {
        __m256d D = _mm256_blendv_pd(Inf, VO, Stable);
        _mm256_storeu_pd(Dst + J, D);
        Count += detail::finiteLanes(D);
        continue;
      }
      // Some lane grew and thresholds exist: resolve the block's lanes
      // with the scalar rule (identical to the fallback below).
      for (std::size_t K = 0; K != 4; ++K) {
        double VOk = OldS[J + K], VNk = NewS[J + K];
        double V;
        if (VNk <= VOk) {
          V = VOk;
        } else {
          const double *It = std::lower_bound(Thr, Thr + ThrN, VNk);
          V = It == Thr + ThrN ? Infinity : *It;
        }
        Dst[J + K] = V;
        Count += isFinite(V);
      }
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J) {
    double VO = OldS[J], VN = NewS[J];
    double V;
    if (VN <= VO) {
      V = VO;
    } else if (ThrN == 0) {
      V = Infinity;
    } else {
      const double *It = std::lower_bound(Thr, Thr + ThrN, VN);
      V = It == Thr + ThrN ? Infinity : *It;
    }
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

/// True iff A[j] <= B[j] for all j in [0, Len): the inclusion test's
/// span predicate. Early-exits on the first 4-lane block containing a
/// violating lane (movemask of the greater-than compare).
OPTOCT_SCALAR_KERNEL
inline bool spanLeq(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      if (_mm256_movemask_pd(_mm256_cmp_pd(VA, VB, _CMP_GT_OQ)) != 0)
        return false;
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J)
    if (A[J] > B[J])
      return false;
  return true;
}

/// True iff A[j] == B[j] for all j in [0, Len): the equality test's
/// span predicate, with the same first-violating-lane early exit.
OPTOCT_SCALAR_KERNEL
inline bool spanEq(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d VA = _mm256_loadu_pd(A + J);
      __m256d VB = _mm256_loadu_pd(B + J);
      if (_mm256_movemask_pd(_mm256_cmp_pd(VA, VB, _CMP_NEQ_UQ)) != 0)
        return false;
    }
  }
#endif
  OPTOCT_SCALAR_LOOP
  for (; J != Len; ++J)
    if (A[J] != B[J])
      return false;
  return true;
}

} // namespace optoct

#endif // OPTOCT_OCT_VECTOR_OPS_H
