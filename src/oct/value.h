//===- oct/value.h - Bound values for DBM entries ---------------*- C++ -*-===//
///
/// \file
/// DBM entries are inequality bounds in R ∪ {+∞}, stored as doubles like
/// the paper's released double-precision implementation. +∞ encodes the
/// trivial (always true) inequality.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VALUE_H
#define OPTOCT_OCT_VALUE_H

#include <limits>

namespace optoct {

/// The trivial bound: v_j - v_i <= +inf always holds.
inline constexpr double Infinity = std::numeric_limits<double>::infinity();

/// True for a non-trivial (constraining) bound.
inline bool isFinite(double Bound) { return Bound != Infinity; }

/// Saturating min-plus addition of two bounds: +inf absorbs, because a
/// path through a non-existent edge does not exist. Plain `+` computes
/// (+inf) + (-inf) = NaN, which then poisons every min() it meets; this
/// hazard is real once user-supplied bounds (C API, fault injection)
/// can mix infinities. Use at add sites whose operands can be +inf and
/// negative at the same time.
inline double boundAdd(double A, double B) {
  return (A == Infinity || B == Infinity) ? Infinity : A + B;
}

} // namespace optoct

#endif // OPTOCT_OCT_VALUE_H
