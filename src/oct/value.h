//===- oct/value.h - Bound values for DBM entries ---------------*- C++ -*-===//
///
/// \file
/// DBM entries are inequality bounds in R ∪ {+∞}, stored as doubles like
/// the paper's released double-precision implementation. +∞ encodes the
/// trivial (always true) inequality.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VALUE_H
#define OPTOCT_OCT_VALUE_H

#include <limits>

namespace optoct {

/// The trivial bound: v_j - v_i <= +inf always holds.
inline constexpr double Infinity = std::numeric_limits<double>::infinity();

/// True for a non-trivial (constraining) bound.
inline bool isFinite(double Bound) { return Bound != Infinity; }

} // namespace optoct

#endif // OPTOCT_OCT_VALUE_H
