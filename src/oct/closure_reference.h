//===- oct/closure_reference.h - Full-DBM closure baselines -----*- C++ -*-===//
///
/// \file
/// Octagon closure on the full (2n x 2n, redundant) DBM representation:
///
///   * closureFullReference — Algorithm 1 of the paper verbatim:
///     Floyd-Warshall shortest-path closure followed by the
///     strengthening step. This is the executable specification that
///     every optimized closure is differentially tested against.
///   * closureFullVectorized — the "FW" baseline of Fig. 6(a): the same
///     algorithm with processor-specific optimizations (AVX
///     vectorization, scalar replacement) but *without* the operation
///     count reduction of Algorithm 3.
///
/// FullDbm is the plain row-major 2n x 2n matrix with conversions to and
/// from the packed half representation.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CLOSURE_REFERENCE_H
#define OPTOCT_OCT_CLOSURE_REFERENCE_H

#include "oct/dbm.h"
#include "support/aligned.h"

namespace optoct {

/// Row-major full 2n x 2n DBM (both coherent copies of each inequality
/// are stored).
class FullDbm {
public:
  explicit FullDbm(unsigned NumVars)
      : N(NumVars), M(4 * static_cast<std::size_t>(NumVars) * NumVars) {}

  /// Builds the full matrix from a half DBM, mirroring entries by
  /// coherence.
  explicit FullDbm(const HalfDbm &Half);

  unsigned numVars() const { return N; }
  unsigned dim() const { return 2 * N; }

  double &at(unsigned I, unsigned J) {
    return M[static_cast<std::size_t>(I) * dim() + J];
  }
  double at(unsigned I, unsigned J) const {
    return M[static_cast<std::size_t>(I) * dim() + J];
  }

  double *row(unsigned I) { return M.data() + static_cast<std::size_t>(I) * dim(); }
  const double *row(unsigned I) const {
    return M.data() + static_cast<std::size_t>(I) * dim();
  }

  void initTop() {
    M.fill(Infinity);
    for (unsigned I = 0, D = dim(); I != D; ++I)
      at(I, I) = 0.0;
  }

  /// Copies the lower-triangle entries back into a half DBM.
  void toHalf(HalfDbm &Out) const;

  /// True if the matrix is coherent: at(i,j) == at(j^1, i^1).
  bool isCoherent() const;

private:
  unsigned N;
  AlignedBuffer<double> M;
};

/// Algorithm 1: Floyd-Warshall + strengthening on the full DBM.
/// Returns false if the octagon is empty (negative diagonal); on true
/// the matrix is strongly closed with a zero diagonal.
bool closureFullReference(FullDbm &O);

/// Shortest-path step of Algorithm 1 only (no strengthening). Exposed
/// for the decomposed-closure differential tests.
void shortestPathFullReference(FullDbm &O);

/// The Fig. 6(a) "FW" baseline: Algorithm 1 with AVX vectorization and
/// scalar replacement, same operation count.
bool closureFullVectorized(FullDbm &O);

} // namespace optoct

#endif // OPTOCT_OCT_CLOSURE_REFERENCE_H
