//===- oct/closure_reference.cpp - Full-DBM closure baselines ------------===//

#include "oct/closure_reference.h"

#include "oct/vector_min.h"

using namespace optoct;

FullDbm::FullDbm(const HalfDbm &Half) : FullDbm(Half.numVars()) {
  for (unsigned I = 0, D = dim(); I != D; ++I)
    for (unsigned J = 0; J != D; ++J)
      at(I, J) = Half.get(I, J);
}

void FullDbm::toHalf(HalfDbm &Out) const {
  assert(Out.numVars() == N && "dimension mismatch");
  for (unsigned I = 0, D = dim(); I != D; ++I)
    for (unsigned J = 0; J <= (I | 1u) && J != D; ++J)
      Out.at(I, J) = at(I, J);
}

bool FullDbm::isCoherent() const {
  for (unsigned I = 0, D = dim(); I != D; ++I)
    for (unsigned J = 0; J != D; ++J)
      if (at(I, J) != at(J ^ 1u, I ^ 1u))
        return false;
  return true;
}

void optoct::shortestPathFullReference(FullDbm &O) {
  unsigned D = O.dim();
  for (unsigned K = 0; K != D; ++K)
    for (unsigned I = 0; I != D; ++I)
      for (unsigned J = 0; J != D; ++J) {
        double Path = O.at(I, K) + O.at(K, J);
        if (Path < O.at(I, J))
          O.at(I, J) = Path;
      }
}

bool optoct::closureFullReference(FullDbm &O) {
  unsigned D = O.dim();
  shortestPathFullReference(O);

  // Strengthening: O(i,j) = min(O(i,j), (O(i,i^1) + O(j^1,j)) / 2).
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J != D; ++J) {
      double S = (O.at(I, I ^ 1u) + O.at(J ^ 1u, J)) * 0.5;
      if (S < O.at(I, J))
        O.at(I, J) = S;
    }

  // Emptiness: a negative diagonal entry witnesses an infeasible cycle.
  for (unsigned I = 0; I != D; ++I)
    if (O.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    O.at(I, I) = 0.0;
  return true;
}

bool optoct::closureFullVectorized(FullDbm &O) {
  unsigned D = O.dim();

  // Floyd-Warshall with scalar replacement of the column operand and a
  // vectorized row update (the pivot row is already contiguous in the
  // full representation, so no gather buffer is needed).
  for (unsigned K = 0; K != D; ++K) {
    const double *RowK = O.row(K);
    for (unsigned I = 0; I != D; ++I) {
      // No finiteness short-circuit: the Fig. 6(a) baseline keeps the
      // full operation count and gains only from vectorization,
      // locality, and scalar replacement.
      double Cik = O.at(I, K);
      minPlusRow1(O.row(I), RowK, Cik, D);
    }
  }

  // Vectorized strengthening: gather the diagonal operands T[j] =
  // O(j^1, j) into a contiguous array first (Section 5.2).
  AlignedBuffer<double> T(D);
  for (unsigned J = 0; J != D; ++J)
    T[J] = O.at(J ^ 1u, J);
  for (unsigned I = 0; I != D; ++I)
    strengthenRow(O.row(I), T.data(), T[I ^ 1u], D);

  for (unsigned I = 0; I != D; ++I)
    if (O.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    O.at(I, I) = 0.0;
  return true;
}
