//===- oct/simd_dispatch.h - Startup SIMD tier selection --------*- C++ -*-===//
///
/// \file
/// Selects, once at startup, which per-ISA kernel table (simd_kernels.h)
/// the whole process runs: the highest tier the CPU supports, or the
/// tier named by OPTOCT_SIMD=scalar|avx2|avx512. An explicit request
/// for an unsupported tier degrades to the best supported one and logs
/// the downgrade to stderr (CI's runtime-dispatch leg asserts on that
/// line), so a field report always states the tier actually running.
///
/// Concurrency: the active table is a constinit atomic pointer,
/// initialized to the scalar table before any dynamic initializer runs
/// and upgraded by this TU's dynamic initializer while the process is
/// still single-threaded. Readers use relaxed loads — the table
/// contents are immutable — so the hot-path wrappers cost one indirect
/// load; TSan runs the Blocked/SimdDispatch test groups over it.
/// simdForceTier() exists for tests and benches and must only be called
/// while no analysis thread is running (same contract as octConfig()).
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_SIMD_DISPATCH_H
#define OPTOCT_OCT_SIMD_DISPATCH_H

#include "oct/simd_kernels.h"

#include <atomic>
#include <string>

namespace optoct {

/// ISA tiers, ordered: a higher tier strictly extends the features of
/// every lower one.
enum class SimdTier { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// "scalar" / "avx2" / "avx512".
const char *simdTierName(SimdTier Tier);

/// Parses an OPTOCT_SIMD value; returns false (leaving \p Tier alone)
/// for anything that is not a tier name.
bool simdParseTier(const char *Value, SimdTier &Tier);

/// True iff the running CPU (and, for AVX-512, the OS's XCR0 state)
/// supports \p Tier. Scalar is always supported.
bool simdTierSupported(SimdTier Tier);

/// Highest supported tier on this machine.
SimdTier simdBestTier();

/// Pure selection policy: what tier does \p EnvValue (the OPTOCT_SIMD
/// setting, or null/empty for auto) yield on this machine? When the
/// request must be downgraded or cannot be parsed, a one-line
/// diagnostic is appended to \p LogOut (if non-null). Does not install
/// anything — exposed separately so tests can probe the policy without
/// mutating process state.
SimdTier simdSelectTier(const char *EnvValue, std::string *LogOut);

namespace detail {
/// The active table. Never null: statically points at the scalar tier,
/// retargeted during startup (or by simdForceTier) only.
extern std::atomic<const SpanKernels *> ActiveSpanKernels;
} // namespace detail

/// The kernel table every hot path dispatches through.
inline const SpanKernels &activeSpanKernels() {
  return *detail::ActiveSpanKernels.load(std::memory_order_relaxed);
}

/// Tier of the active table.
SimdTier activeSimdTier();

/// Installs \p Tier (downgrading to the best supported tier if needed)
/// and returns what was actually installed. Test/bench hook: call only
/// while single-threaded.
SimdTier simdForceTier(SimdTier Tier);

/// Re-runs the startup selection (OPTOCT_SIMD + CPU probes) and
/// installs the result. Returns the installed tier.
SimdTier simdResetTier();

} // namespace optoct

#endif // OPTOCT_OCT_SIMD_DISPATCH_H
