//===- oct/vector_min.h - Vectorized min-plus kernels -----------*- C++ -*-===//
///
/// \file
/// The inner-loop kernels of the dense closure and strengthening steps
/// (Section 5.2), written with AVX intrinsics like the paper's
/// implementation. Since the runtime-dispatch rework the bodies live in
/// the per-ISA kernel tables (oct/simd_kernels.h) and these wrappers
/// pick between the startup-selected tier and the pinned-scalar table
/// via octConfig().EnableVectorization — the closure call sites do not
/// re-check the flag themselves, so the ablation benchmarks
/// (OPTOCT_VECTORIZE=0) land on the genuinely scalar tier through this
/// check. Per-row spans amortize the extra load well below noise.
///
/// All kernels perform element-wise minimization into \p Dst and use
/// unaligned loads because packed half-DBM rows start at arbitrary
/// offsets.
///
/// The span kernels of the quadratic lattice operators (join, meet,
/// widening, narrowing, inclusion, equality) live in oct/vector_ops.h;
/// this header keeps the closure/strengthening min-plus family.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VECTOR_MIN_H
#define OPTOCT_OCT_VECTOR_MIN_H

#include "oct/config.h"
#include "oct/simd_dispatch.h"

#include <cstddef>

namespace optoct {

namespace detail {
/// The startup-selected tier when vectorization is on; the pinned
/// scalar table when the ablation turns it off.
inline const SpanKernels &minPlusKernels() {
  return octConfig().EnableVectorization ? activeSpanKernels()
                                         : SpanKernelsScalar;
}
} // namespace detail

/// Dst[j] = min(Dst[j], A + RowA[j], B + RowB[j]) for j in [0, Len).
/// This is the remaining-entries update of the dense shortest-path
/// closure (Algorithm 3): A and B are the scalar-replaced column operands
/// O(i,2k) and O(i,2k+1); RowA/RowB are the buffered pivot rows.
inline void minPlusRow2(double *Dst, const double *RowA, double A,
                        const double *RowB, double B, std::size_t Len) {
  detail::minPlusKernels().MinPlusRow2(Dst, RowA, A, RowB, B, Len);
}

/// Dst[j] = min(Dst[j], A + RowA[j]) for j in [0, Len). Single-pivot
/// variant used by the incremental closure and the full-DBM
/// Floyd-Warshall.
inline void minPlusRow1(double *Dst, const double *RowA, double A,
                        std::size_t Len) {
  detail::minPlusKernels().MinPlusRow1(Dst, RowA, A, Len);
}

/// Dst[j] = min(Dst[j], (Di + T[j]) / 2) for j in [0, Len): the
/// strengthening update with the diagonal operands pre-gathered into the
/// contiguous array T (Section 5.2, "vectorization for strengthening").
inline void strengthenRow(double *Dst, const double *T, double Di,
                          std::size_t Len) {
  detail::minPlusKernels().StrengthenRow(Dst, T, Di, Len);
}

/// Dst[j] = min(Dst[j], Src[j]) for j in [0, Len): the meet operator's
/// inner loop on dense matrices.
inline void minRows(double *Dst, const double *Src, std::size_t Len) {
  detail::minPlusKernels().MinRows(Dst, Src, Len);
}

/// Dst[j] = max(Dst[j], Src[j]) for j in [0, Len): the join operator's
/// inner loop on dense matrices.
inline void maxRows(double *Dst, const double *Src, std::size_t Len) {
  detail::minPlusKernels().MaxRows(Dst, Src, Len);
}

} // namespace optoct

#endif // OPTOCT_OCT_VECTOR_MIN_H
