//===- oct/vector_min.h - Vectorized min-plus kernels -----------*- C++ -*-===//
///
/// \file
/// The inner-loop kernels of the dense closure and strengthening steps
/// (Section 5.2), written with AVX intrinsics like the paper's
/// implementation, with scalar fallbacks selected at runtime via
/// octConfig().EnableVectorization (for the ablation benchmarks) or at
/// compile time when AVX2 is unavailable.
///
/// All kernels perform element-wise minimization into \p Dst and use
/// unaligned loads because packed half-DBM rows start at arbitrary
/// offsets.
///
/// The span kernels of the quadratic lattice operators (join, meet,
/// widening, narrowing, inclusion, equality) live in oct/vector_ops.h;
/// this header keeps the closure/strengthening min-plus family.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_VECTOR_MIN_H
#define OPTOCT_OCT_VECTOR_MIN_H

#include "oct/config.h"

#include <cstddef>

#if defined(__AVX__)
#include <immintrin.h>
#endif

namespace optoct {

/// Dst[j] = min(Dst[j], A + RowA[j], B + RowB[j]) for j in [0, Len).
/// This is the remaining-entries update of the dense shortest-path
/// closure (Algorithm 3): A and B are the scalar-replaced column operands
/// O(i,2k) and O(i,2k+1); RowA/RowB are the buffered pivot rows.
inline void minPlusRow2(double *Dst, const double *RowA, double A,
                        const double *RowB, double B, std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    __m256d VA = _mm256_set1_pd(A);
    __m256d VB = _mm256_set1_pd(B);
    for (; J + 4 <= Len; J += 4) {
      __m256d D = _mm256_loadu_pd(Dst + J);
      __m256d TA = _mm256_add_pd(VA, _mm256_loadu_pd(RowA + J));
      __m256d TB = _mm256_add_pd(VB, _mm256_loadu_pd(RowB + J));
      D = _mm256_min_pd(D, _mm256_min_pd(TA, TB));
      _mm256_storeu_pd(Dst + J, D);
    }
  }
#endif
  for (; J != Len; ++J) {
    double T1 = A + RowA[J];
    double T2 = B + RowB[J];
    double T = T1 < T2 ? T1 : T2;
    if (T < Dst[J])
      Dst[J] = T;
  }
}

/// Dst[j] = min(Dst[j], A + RowA[j]) for j in [0, Len). Single-pivot
/// variant used by the incremental closure and the full-DBM
/// Floyd-Warshall.
inline void minPlusRow1(double *Dst, const double *RowA, double A,
                        std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    __m256d VA = _mm256_set1_pd(A);
    for (; J + 4 <= Len; J += 4) {
      __m256d D = _mm256_loadu_pd(Dst + J);
      __m256d T = _mm256_add_pd(VA, _mm256_loadu_pd(RowA + J));
      _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, T));
    }
  }
#endif
  for (; J != Len; ++J) {
    double T = A + RowA[J];
    if (T < Dst[J])
      Dst[J] = T;
  }
}

/// Dst[j] = min(Dst[j], (Di + T[j]) / 2) for j in [0, Len): the
/// strengthening update with the diagonal operands pre-gathered into the
/// contiguous array T (Section 5.2, "vectorization for strengthening").
inline void strengthenRow(double *Dst, const double *T, double Di,
                          std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    __m256d VD = _mm256_set1_pd(Di);
    __m256d Half = _mm256_set1_pd(0.5);
    for (; J + 4 <= Len; J += 4) {
      __m256d S =
          _mm256_mul_pd(_mm256_add_pd(VD, _mm256_loadu_pd(T + J)), Half);
      __m256d D = _mm256_loadu_pd(Dst + J);
      _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, S));
    }
  }
#endif
  for (; J != Len; ++J) {
    double S = (Di + T[J]) * 0.5;
    if (S < Dst[J])
      Dst[J] = S;
  }
}

/// Dst[j] = min(Dst[j], Src[j]) for j in [0, Len): the meet operator's
/// inner loop on dense matrices.
inline void minRows(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d D = _mm256_loadu_pd(Dst + J);
      __m256d S = _mm256_loadu_pd(Src + J);
      _mm256_storeu_pd(Dst + J, _mm256_min_pd(D, S));
    }
  }
#endif
  for (; J != Len; ++J)
    if (Src[J] < Dst[J])
      Dst[J] = Src[J];
}

/// Dst[j] = max(Dst[j], Src[j]) for j in [0, Len): the join operator's
/// inner loop on dense matrices.
inline void maxRows(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
#if defined(__AVX__)
  if (octConfig().EnableVectorization) {
    for (; J + 4 <= Len; J += 4) {
      __m256d D = _mm256_loadu_pd(Dst + J);
      __m256d S = _mm256_loadu_pd(Src + J);
      _mm256_storeu_pd(Dst + J, _mm256_max_pd(D, S));
    }
  }
#endif
  for (; J != Len; ++J)
    if (Src[J] > Dst[J])
      Dst[J] = Src[J];
}

} // namespace optoct

#endif // OPTOCT_OCT_VECTOR_MIN_H
