//===- oct/constraint.h - Octagonal constraints and linear exprs -*- C++ -*-===//
///
/// \file
/// The constraint language of the Octagon domain: inequalities
/// a*vi + b*vj <= c with a, b in {-1, 0, +1} (Section 2.1), plus general
/// linear expressions used by assignment transfer functions (handled
/// exactly when octagonal, by interval approximation otherwise).
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_CONSTRAINT_H
#define OPTOCT_OCT_CONSTRAINT_H

#include "oct/value.h"

#include <cassert>
#include <string>
#include <utility>
#include <vector>

namespace optoct {

/// An octagonal inequality CoefI*Var(I) + CoefJ*Var(J) <= Bound.
/// CoefI is +1 or -1; CoefJ is +1, -1, or 0 (0 for a unary constraint,
/// in which case J is ignored and conventionally equals I).
struct OctCons {
  int CoefI;
  unsigned I;
  int CoefJ;
  unsigned J;
  double Bound;

  /// vi - vj <= c
  static OctCons diff(unsigned I, unsigned J, double C) {
    assert(I != J && "binary constraint needs distinct variables");
    return {+1, I, -1, J, C};
  }
  /// vi + vj <= c
  static OctCons sum(unsigned I, unsigned J, double C) {
    assert(I != J && "binary constraint needs distinct variables");
    return {+1, I, +1, J, C};
  }
  /// -vi - vj <= c
  static OctCons negSum(unsigned I, unsigned J, double C) {
    assert(I != J && "binary constraint needs distinct variables");
    return {-1, I, -1, J, C};
  }
  /// vi <= c
  static OctCons upper(unsigned I, double C) { return {+1, I, 0, I, C}; }
  /// -vi <= c  (i.e. vi >= -c)
  static OctCons lower(unsigned I, double C) { return {-1, I, 0, I, C}; }

  bool isUnary() const { return CoefJ == 0; }

  /// The (row, col) of the full-DBM entry encoding this constraint, and
  /// the entry's bound (2*Bound for unary constraints). Entry (i,j)=c
  /// encodes vhat_j - vhat_i <= c with vhat_{2v} = +v, vhat_{2v+1} = -v.
  struct Entry {
    unsigned Row, Col;
    double Bound;
  };
  Entry toEntry() const {
    if (isUnary()) {
      // +v <= c  ->  vhat_{2v} - vhat_{2v+1} <= 2c
      // -v <= c  ->  vhat_{2v+1} - vhat_{2v} <= 2c
      if (CoefI > 0)
        return {2 * I + 1, 2 * I, 2 * Bound};
      return {2 * I, 2 * I + 1, 2 * Bound};
    }
    // CoefI*vI + CoefJ*vJ <= c  <=>  vhat_col - vhat_row <= c with
    // vhat_col representing CoefI*vI and vhat_row representing -CoefJ*vJ.
    unsigned Col = CoefI > 0 ? 2 * I : 2 * I + 1;
    unsigned Row = CoefJ > 0 ? 2 * J + 1 : 2 * J;
    return {Row, Col, Bound};
  }
};

/// Upper/lower bounds of a variable or expression; either end may be
/// infinite.
struct Interval {
  double Lo = -Infinity;
  double Hi = Infinity;

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const { return Lo == -Infinity && Hi == Infinity; }
};

/// A linear expression sum(Coef_k * Var_k) + Const with integer
/// coefficients. Terms hold distinct variables.
struct LinExpr {
  std::vector<std::pair<int, unsigned>> Terms; ///< (coefficient, variable)
  double Const = 0.0;

  static LinExpr constant(double C) { return {{}, C}; }
  static LinExpr variable(unsigned V) { return {{{1, V}}, 0.0}; }

  /// Adds Coef * Var, combining with an existing term for Var.
  void addTerm(int Coef, unsigned Var);

  /// Returns the single (coefficient, variable) term if the expression
  /// has exactly one term with coefficient +-1 — the octagon-exact
  /// assignment forms x := +-y + c — otherwise nullptr.
  const std::pair<int, unsigned> *octagonalTerm() const {
    if (Terms.size() != 1 || (Terms[0].first != 1 && Terms[0].first != -1))
      return nullptr;
    return &Terms[0];
  }

  std::string str() const;
};

} // namespace optoct

#endif // OPTOCT_OCT_CONSTRAINT_H
