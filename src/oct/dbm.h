//===- oct/dbm.h - Half difference-bound matrix ------------------*- C++ -*-===//
///
/// \file
/// The half (lower-triangular) DBM representation of octagons used by the
/// paper and by APRON (Section 2.1, Section 5.1).
///
/// For n program variables v_0..v_{n-1} the full DBM is a 2n x 2n matrix
/// over the extended variables vhat_{2i} = +v_i and vhat_{2i+1} = -v_i,
/// where entry O(i,j) = c encodes the inequality vhat_j - vhat_i <= c.
/// The full matrix is coherent: O(i,j) and O(j^1, i^1) encode the same
/// inequality, so only entries with j <= (i|1) are stored — the lower
/// triangle of the 2x2-block view — for a total of 2n(n+1) doubles.
///
/// The buffer is deliberately allowed to be *partially initialized*: the
/// Top and Decomposed octagon kinds interpret entries outside their
/// independent components as implicit +inf (Section 3), so those slots
/// may hold garbage until a component grows over them.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_DBM_H
#define OPTOCT_OCT_DBM_H

#include "oct/value.h"
#include "support/aligned.h"

#include <cassert>
#include <cstddef>

namespace optoct {

/// Lower-triangular (half) DBM over 2n extended variables.
class HalfDbm {
public:
  HalfDbm() = default;

  /// Allocates storage for \p NumVars variables; entries uninitialized.
  explicit HalfDbm(unsigned NumVars)
      : N(NumVars), M(matSize(NumVars)) {}

  /// Number of program variables n.
  unsigned numVars() const { return N; }

  /// Number of extended variables 2n (matrix dimension).
  unsigned dim() const { return 2 * N; }

  /// Number of stored entries, 2n(n+1).
  static std::size_t matSize(unsigned NumVars) {
    return 2 * static_cast<std::size_t>(NumVars) * (NumVars + 1);
  }
  std::size_t size() const { return matSize(N); }

  /// Packed index of stored entry (i, j), valid only for j <= (i|1).
  /// Row i holds (i|1)+1 entries; rows are laid out consecutively.
  static std::size_t index(unsigned I, unsigned J) {
    assert(J <= (I | 1u) && "index() requires a lower-triangle entry");
    return J + (static_cast<std::size_t>(I) + 1) * (I + 1) / 2;
  }

  /// Reads entry (i, j) for any i, j < 2n using coherence.
  double get(unsigned I, unsigned J) const {
    assert(I < dim() && J < dim() && "DBM access out of range");
    if (J <= (I | 1u))
      return M[index(I, J)];
    return M[index(J ^ 1u, I ^ 1u)];
  }

  /// Writes entry (i, j) for any i, j < 2n using coherence.
  void set(unsigned I, unsigned J, double Value) {
    assert(I < dim() && J < dim() && "DBM access out of range");
    if (J <= (I | 1u))
      M[index(I, J)] = Value;
    else
      M[index(J ^ 1u, I ^ 1u)] = Value;
  }

  /// Direct access to a stored (lower-triangle) entry.
  double &at(unsigned I, unsigned J) {
    assert(I < dim() && "DBM access out of range");
    return M[index(I, J)];
  }
  double at(unsigned I, unsigned J) const {
    assert(I < dim() && "DBM access out of range");
    return M[index(I, J)];
  }

  /// Re-shapes to \p NumVars variables, reusing the existing allocation
  /// when it is large enough (entries are discarded either way). Used by
  /// the closure scratch to recycle one submatrix temp across closures.
  void resizeDiscard(unsigned NumVars) {
    if (matSize(NumVars) > M.size())
      M.resizeDiscard(matSize(NumVars));
    N = NumVars;
  }

  /// Raw packed storage (for the optimized closure kernels).
  double *data() { return M.data(); }
  const double *data() const { return M.data(); }

  /// Number of stored entries in row \p I: columns j = 0..(I|1). Both
  /// rows of a variable pair (2v, 2v+1) store the same (I|1)+1 columns,
  /// so row(I)[0 .. rowEntries(I)) is the contiguous span the flat
  /// operator kernels (oct/vector_ops.h) stream over.
  static unsigned rowEntries(unsigned I) { return (I | 1u) + 1; }

  /// Pointer to the start of stored row \p I (entries j = 0..(I|1)).
  double *row(unsigned I) { return M.data() + index(I, 0); }
  const double *row(unsigned I) const { return M.data() + index(I, 0); }

  /// Initializes every entry to the top element: +inf off-diagonal, 0 on
  /// the diagonal.
  void initTop() {
    M.fill(Infinity);
    for (unsigned I = 0, D = dim(); I != D; ++I)
      M[index(I, I)] = 0.0;
  }

  /// Initializes only the entries relating variables \p U and \p V (the
  /// four cross entries in the lower triangle, or the 2x2 diagonal block
  /// when U == V) to trivial values. Used for on-demand initialization
  /// when components grow (Section 3).
  void initPairTrivial(unsigned U, unsigned V) {
    assert(U < N && V < N && "variable out of range");
    if (U == V) {
      M[index(2 * U, 2 * U)] = 0.0;
      M[index(2 * U, 2 * U + 1)] = Infinity;
      M[index(2 * U + 1, 2 * U)] = Infinity;
      M[index(2 * U + 1, 2 * U + 1)] = 0.0;
      return;
    }
    unsigned Lo = U < V ? U : V, Hi = U < V ? V : U;
    // All four (2Hi+a, 2Lo+b) slots are in the lower triangle.
    for (unsigned A = 0; A != 2; ++A)
      for (unsigned B = 0; B != 2; ++B)
        M[index(2 * Hi + A, 2 * Lo + B)] = Infinity;
  }

  /// Counts stored entries that are finite (< +inf). Only meaningful on a
  /// fully initialized matrix.
  std::size_t countFinite() const {
    std::size_t Nni = 0;
    for (std::size_t I = 0, E = size(); I != E; ++I)
      Nni += isFinite(M[I]);
    return Nni;
  }

private:
  unsigned N = 0;
  AlignedBuffer<double> M;
};

} // namespace optoct

#endif // OPTOCT_OCT_DBM_H
