//===- oct/closure_sparse.cpp - Index-driven sparse closure --------------===//

#include "oct/closure_sparse.h"

#include "support/budget.h"
#include "support/faultinject.h"

#include <numeric>

using namespace optoct;

namespace {

/// Builds the list of extended indices 2v, 2v+1 for each v in Vars,
/// ascending (Vars is sorted).
std::vector<unsigned> extendedIndices(const std::vector<unsigned> &Vars) {
  std::vector<unsigned> E;
  E.reserve(2 * Vars.size());
  for (unsigned V : Vars) {
    E.push_back(2 * V);
    E.push_back(2 * V + 1);
  }
  return E;
}

} // namespace

void optoct::shortestPathSparseRestricted(HalfDbm &M,
                                          const std::vector<unsigned> &Vars,
                                          ClosureScratch &Scratch) {
  if (Vars.empty())
    return;
  unsigned D = M.dim();
  Scratch.ensure(D);
  double *ColK = Scratch.ColK.data();
  double *ColK1 = Scratch.ColK1.data();
  double *RowK = Scratch.RowK.data();
  double *RowK1 = Scratch.RowK1.data();
  std::vector<unsigned> EVars = extendedIndices(Vars);

  for (unsigned K : Vars) {
    support::pollBudget();
    support::faultPoint("closure.pivot");
    unsigned KK = 2 * K, KK1 = 2 * K + 1;
    double OkK1 = M.at(KK, KK1);
    double Ok1K = M.at(KK1, KK);

    // Update the pivot columns (linear scan over the component — this is
    // the quadratic part of the complexity) and gather their values.
    //
    // The adds would want boundAdd (Vk/Vk1 can be +inf while the
    // in-block operand is negative), but the in-block operands are
    // loop-invariant, so the saturation test hoists out of the loop: a
    // +inf operand can never win the min, and for a finite one plain +
    // IS boundAdd, since stored bounds live in R ∪ {+inf} (-inf/NaN
    // sanitized at the domain boundary). The sparse inner loops below
    // are safe as-is — their index lists admit only finite operands.
    const bool FinK1 = isFinite(OkK1), FinK = isFinite(Ok1K);
    for (unsigned I : EVars) {
      if (I == KK || I == KK1) {
        ColK[I] = I == KK ? 0.0 : Ok1K;
        ColK1[I] = I == KK ? OkK1 : 0.0;
        continue;
      }
      double Vk = M.get(I, KK);
      double Vk1 = M.get(I, KK1);
      if (FinK1) {
        double T1 = Vk + OkK1;
        if (T1 < Vk1)
          Vk1 = T1;
      }
      if (FinK) {
        double T0 = Vk1 + Ok1K;
        if (T0 < Vk)
          Vk = T0;
      }
      M.set(I, KK, Vk);
      M.set(I, KK1, Vk1);
      ColK[I] = Vk;
      ColK1[I] = Vk1;
    }

    // Index the finite row operands. By coherence O(2k,j) = ColK1[j^1]
    // and O(2k+1,j) = ColK[j^1]; EVars is xor-closed so scanning it in
    // order yields sorted index lists.
    Scratch.IdxRowK.clear();
    Scratch.IdxRowK1.clear();
    for (unsigned J : EVars) {
      double Rk = ColK1[J ^ 1u];
      double Rk1 = ColK[J ^ 1u];
      RowK[J] = Rk;
      RowK1[J] = Rk1;
      if (isFinite(Rk))
        Scratch.IdxRowK.push_back(J);
      if (isFinite(Rk1))
        Scratch.IdxRowK1.push_back(J);
    }

    // Remaining entries: update (i,j) only when both operands are
    // finite. The index lists are sorted, so "j <= (i|1)" is a prefix.
    for (unsigned I : EVars) {
      double C1 = ColK[I];
      double C2 = ColK1[I];
      unsigned Limit = I | 1u;
      if (isFinite(C1)) {
        double *Row = M.row(I);
        for (unsigned J : Scratch.IdxRowK) {
          if (J > Limit)
            break;
          double T = C1 + RowK[J];
          if (T < Row[J])
            Row[J] = T;
        }
      }
      if (isFinite(C2)) {
        double *Row = M.row(I);
        for (unsigned J : Scratch.IdxRowK1) {
          if (J > Limit)
            break;
          double T = C2 + RowK1[J];
          if (T < Row[J])
            Row[J] = T;
        }
      }
    }
  }
}

void optoct::strengthenSparseRestricted(HalfDbm &M,
                                        const std::vector<unsigned> &Vars,
                                        ClosureScratch &Scratch) {
  if (Vars.empty())
    return;
  Scratch.ensure(M.dim());
  double *T = Scratch.T.data();
  std::vector<unsigned> EVars = extendedIndices(Vars);

  // Index the finite diagonal operands T[j] = O(j^1, j).
  Scratch.IdxT.clear();
  for (unsigned J : EVars) {
    T[J] = M.get(J ^ 1u, J);
    if (isFinite(T[J]))
      Scratch.IdxT.push_back(J);
  }

  for (unsigned I : EVars) {
    double Di = T[I ^ 1u];
    if (!isFinite(Di))
      continue;
    double *Row = M.row(I);
    unsigned Limit = I | 1u;
    for (unsigned J : Scratch.IdxT) {
      if (J > Limit)
        break;
      double S = (Di + T[J]) * 0.5;
      if (S < Row[J])
        Row[J] = S;
    }
  }
}

bool optoct::closureSparse(HalfDbm &M, ClosureScratch &Scratch,
                           std::size_t &NniOut) {
  std::vector<unsigned> AllVars(M.numVars());
  std::iota(AllVars.begin(), AllVars.end(), 0u);
  shortestPathSparseRestricted(M, AllVars, Scratch);
  strengthenSparseRestricted(M, AllVars, Scratch);

  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I)
    if (M.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    M.at(I, I) = 0.0;
  NniOut = M.countFinite();
  return true;
}
