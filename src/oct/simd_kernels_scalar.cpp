//===- oct/simd_kernels_scalar.cpp - Pinned-scalar kernel tier -----------===//
///
/// \file
/// The scalar tier of the runtime-dispatched kernel table. These are the
/// scalar fallback loops the AVX kernels shipped with, verbatim, pinned
/// against compiler auto-vectorization (OPTOCT_SCALAR_KERNEL): this tier
/// is simultaneously the portable fallback for CPUs without AVX2, the
/// OPTOCT_SIMD=scalar override target, and the honest baseline the
/// ablation benchmarks (OPTOCT_VECTORIZE=0 closure) measure against.
///
/// Bitwise contract with the AVX tiers: ties resolve to the second
/// operand (like MAXPD/MINPD), widening's threshold jump is
/// std::lower_bound on the sorted table, and finite counts use
/// `!= +inf` (NaN and -inf count as finite, matching isFinite).
///
//===----------------------------------------------------------------------===//

#include "oct/simd_kernels.h"
#include "oct/value.h"

#include <algorithm>

namespace optoct {
namespace {

OPTOCT_SCALAR_KERNEL
void maxSpanScalar(double *Dst, const double *A, const double *B,
                   std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    // VB on ties, like MAXPD, so scalar and vector agree bitwise.
    Dst[J] = VA > VB ? VA : VB;
  }
}

OPTOCT_SCALAR_KERNEL
void minSpanScalar(double *Dst, const double *A, const double *B,
                   std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    Dst[J] = VA < VB ? VA : VB;
  }
}

OPTOCT_SCALAR_KERNEL
std::size_t maxSpanCountScalar(double *Dst, const double *A, const double *B,
                               std::size_t Len) {
  std::size_t Count = 0;
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA > VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_SCALAR_KERNEL
std::size_t minSpanCountScalar(double *Dst, const double *A, const double *B,
                               std::size_t Len) {
  std::size_t Count = 0;
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VA = A[J], VB = B[J];
    double V = VA < VB ? VA : VB;
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_SCALAR_KERNEL
std::size_t narrowSpanCountScalar(double *Dst, const double *OldS,
                                  const double *NewS, std::size_t Len) {
  std::size_t Count = 0;
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VO = OldS[J];
    double V = isFinite(VO) ? VO : NewS[J];
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_SCALAR_KERNEL
std::size_t widenSpanCountScalar(double *Dst, const double *OldS,
                                 const double *NewS, std::size_t Len,
                                 const double *Thr, std::size_t ThrN) {
  std::size_t Count = 0;
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double VO = OldS[J], VN = NewS[J];
    double V;
    if (VN <= VO) {
      V = VO;
    } else if (ThrN == 0) {
      V = Infinity;
    } else {
      const double *It = std::lower_bound(Thr, Thr + ThrN, VN);
      V = It == Thr + ThrN ? Infinity : *It;
    }
    Dst[J] = V;
    Count += isFinite(V);
  }
  return Count;
}

OPTOCT_SCALAR_KERNEL
bool spanLeqScalar(const double *A, const double *B, std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J)
    if (A[J] > B[J])
      return false;
  return true;
}

OPTOCT_SCALAR_KERNEL
bool spanEqScalar(const double *A, const double *B, std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J)
    if (A[J] != B[J])
      return false;
  return true;
}

OPTOCT_SCALAR_KERNEL
void minPlusRow2Scalar(double *Dst, const double *RowA, double A,
                       const double *RowB, double B, std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double T1 = A + RowA[J];
    double T2 = B + RowB[J];
    double T = T1 < T2 ? T1 : T2;
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_SCALAR_KERNEL
void minPlusRow1Scalar(double *Dst, const double *RowA, double A,
                       std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double T = A + RowA[J];
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_SCALAR_KERNEL
void strengthenRowScalar(double *Dst, const double *T, double Di,
                         std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J) {
    double S = (Di + T[J]) * 0.5;
    if (S < Dst[J])
      Dst[J] = S;
  }
}

OPTOCT_SCALAR_KERNEL
void minRowsScalar(double *Dst, const double *Src, std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J)
    if (Src[J] < Dst[J])
      Dst[J] = Src[J];
}

OPTOCT_SCALAR_KERNEL
void maxRowsScalar(double *Dst, const double *Src, std::size_t Len) {
  OPTOCT_SCALAR_LOOP
  for (std::size_t J = 0; J != Len; ++J)
    if (Src[J] > Dst[J])
      Dst[J] = Src[J];
}

} // namespace

const SpanKernels SpanKernelsScalar = {
    "scalar",
    maxSpanScalar,
    minSpanScalar,
    maxSpanCountScalar,
    minSpanCountScalar,
    narrowSpanCountScalar,
    widenSpanCountScalar,
    spanLeqScalar,
    spanEqScalar,
    minPlusRow2Scalar,
    minPlusRow1Scalar,
    strengthenRowScalar,
    minRowsScalar,
    maxRowsScalar,
};

} // namespace optoct
