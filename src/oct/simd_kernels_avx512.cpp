//===- oct/simd_kernels_avx512.cpp - 512-bit AVX-512 kernel tier ---------===//
///
/// \file
/// The AVX-512 tier of the runtime-dispatched kernel table: 8-lane
/// variants of every kernel, with masked loads/stores for the span
/// tails so no scalar epilogue is needed. Compiled with function target
/// attributes (avx512f/dq/bw/vl) so the portable binary carries this
/// tier too; simd_dispatch.cpp only selects it when the CPU *and* OS
/// support the full feature set.
///
/// Bitwise contract: VMAXPD/VMINPD/compare semantics at 512 bits are
/// identical to the 256-bit forms (second operand on ties / NaN), the
/// widening threshold scan is the same descending masked-blend as the
/// AVX2 tier, and there is no FMA contraction — so this tier's outputs
/// and finite counts match the scalar tier exactly
/// (tests/test_simd_dispatch.cpp sweeps all tiers on the same inputs).
///
/// Masked-tail rule: loads are maskz (masked-out lanes read +0.0), every
/// predicate/count is taken *through the tail mask*, and stores are
/// masked — so garbage lanes can neither fabricate a violation nor leak
/// into Dst or the counts.
///
//===----------------------------------------------------------------------===//

#include "oct/simd_kernels.h"
#include "oct/value.h"

#if OPTOCT_SIMD_X86

#include <algorithm>
#include <immintrin.h>

#define OPTOCT_TARGET_AVX512                                                   \
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl")))

namespace optoct {
namespace {

constexpr std::size_t BranchlessThrMax = 32; // see simd_kernels_avx2.cpp

OPTOCT_TARGET_AVX512
inline __mmask8 tailMask(std::size_t Rem) {
  return static_cast<__mmask8>((1u << Rem) - 1u);
}

OPTOCT_TARGET_AVX512
inline int finiteLanes512(__m512d V, __mmask8 M) {
  __m512d Inf = _mm512_set1_pd(Infinity);
  return __builtin_popcount(M & _mm512_cmp_pd_mask(V, Inf, _CMP_NEQ_UQ));
}

OPTOCT_TARGET_AVX512
void maxSpanAvx512(double *Dst, const double *A, const double *B,
                   std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d VA = _mm512_loadu_pd(A + J);
    __m512d VB = _mm512_loadu_pd(B + J);
    _mm512_storeu_pd(Dst + J, _mm512_max_pd(VA, VB));
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d VA = _mm512_maskz_loadu_pd(M, A + J);
    __m512d VB = _mm512_maskz_loadu_pd(M, B + J);
    _mm512_mask_storeu_pd(Dst + J, M, _mm512_max_pd(VA, VB));
  }
}

OPTOCT_TARGET_AVX512
void minSpanAvx512(double *Dst, const double *A, const double *B,
                   std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d VA = _mm512_loadu_pd(A + J);
    __m512d VB = _mm512_loadu_pd(B + J);
    _mm512_storeu_pd(Dst + J, _mm512_min_pd(VA, VB));
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d VA = _mm512_maskz_loadu_pd(M, A + J);
    __m512d VB = _mm512_maskz_loadu_pd(M, B + J);
    _mm512_mask_storeu_pd(Dst + J, M, _mm512_min_pd(VA, VB));
  }
}

OPTOCT_TARGET_AVX512
std::size_t maxSpanCountAvx512(double *Dst, const double *A, const double *B,
                               std::size_t Len) {
  std::size_t J = 0, Count = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_max_pd(_mm512_loadu_pd(A + J), _mm512_loadu_pd(B + J));
    _mm512_storeu_pd(Dst + J, D);
    Count += finiteLanes512(D, 0xFF);
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d D = _mm512_max_pd(_mm512_maskz_loadu_pd(M, A + J),
                              _mm512_maskz_loadu_pd(M, B + J));
    _mm512_mask_storeu_pd(Dst + J, M, D);
    Count += finiteLanes512(D, M);
  }
  return Count;
}

OPTOCT_TARGET_AVX512
std::size_t minSpanCountAvx512(double *Dst, const double *A, const double *B,
                               std::size_t Len) {
  std::size_t J = 0, Count = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_min_pd(_mm512_loadu_pd(A + J), _mm512_loadu_pd(B + J));
    _mm512_storeu_pd(Dst + J, D);
    Count += finiteLanes512(D, 0xFF);
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d D = _mm512_min_pd(_mm512_maskz_loadu_pd(M, A + J),
                              _mm512_maskz_loadu_pd(M, B + J));
    _mm512_mask_storeu_pd(Dst + J, M, D);
    Count += finiteLanes512(D, M);
  }
  return Count;
}

OPTOCT_TARGET_AVX512
std::size_t narrowSpanCountAvx512(double *Dst, const double *OldS,
                                  const double *NewS, std::size_t Len) {
  std::size_t J = 0, Count = 0;
  __m512d Inf = _mm512_set1_pd(Infinity);
  for (; J + 8 <= Len; J += 8) {
    __m512d VO = _mm512_loadu_pd(OldS + J);
    __m512d VN = _mm512_loadu_pd(NewS + J);
    __mmask8 FiniteOld = _mm512_cmp_pd_mask(VO, Inf, _CMP_NEQ_UQ);
    __m512d D = _mm512_mask_blend_pd(FiniteOld, VN, VO);
    _mm512_storeu_pd(Dst + J, D);
    Count += finiteLanes512(D, 0xFF);
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d VO = _mm512_maskz_loadu_pd(M, OldS + J);
    __m512d VN = _mm512_maskz_loadu_pd(M, NewS + J);
    __mmask8 FiniteOld = _mm512_cmp_pd_mask(VO, Inf, _CMP_NEQ_UQ);
    __m512d D = _mm512_mask_blend_pd(FiniteOld, VN, VO);
    _mm512_mask_storeu_pd(Dst + J, M, D);
    Count += finiteLanes512(D, M);
  }
  return Count;
}

OPTOCT_TARGET_AVX512
std::size_t widenSpanCountAvx512(double *Dst, const double *OldS,
                                 const double *NewS, std::size_t Len,
                                 const double *Thr, std::size_t ThrN) {
  std::size_t J = 0, Count = 0;
  __m512d Inf = _mm512_set1_pd(Infinity);
  while (J != Len) {
    std::size_t Rem = Len - J;
    __mmask8 M = Rem >= 8 ? static_cast<__mmask8>(0xFF) : tailMask(Rem);
    __m512d VO = _mm512_maskz_loadu_pd(M, OldS + J);
    __m512d VN = _mm512_maskz_loadu_pd(M, NewS + J);
    // Masked-out lanes read +0.0 on both sides and therefore register as
    // stable; every later step is taken through M anyway.
    __mmask8 Stable = _mm512_cmp_pd_mask(VN, VO, _CMP_LE_OQ);
    __m512d D;
    if (ThrN == 0 || (Stable & M) == M) {
      D = _mm512_mask_blend_pd(Stable, Inf, VO);
    } else if (ThrN <= BranchlessThrMax) {
      // Same descending branchless scan as the AVX2 tier: the last
      // overwrite per lane is the smallest Thr[T] >= New — bitwise the
      // std::lower_bound result.
      __m512d Acc = Inf;
      for (std::size_t T = ThrN; T-- != 0;) {
        __m512d Tv = _mm512_set1_pd(Thr[T]);
        Acc = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(Tv, VN, _CMP_GE_OQ),
                                   Acc, Tv);
      }
      D = _mm512_mask_blend_pd(Stable, Acc, VO);
    } else {
      // Oversized threshold table: per-lane scalar rule.
      double Tmp[8];
      for (std::size_t K = 0; K != 8; ++K) {
        if (!(M & (1u << K))) {
          Tmp[K] = Infinity;
          continue;
        }
        double VOk = OldS[J + K], VNk = NewS[J + K];
        if (VNk <= VOk) {
          Tmp[K] = VOk;
        } else {
          const double *It = std::lower_bound(Thr, Thr + ThrN, VNk);
          Tmp[K] = It == Thr + ThrN ? Infinity : *It;
        }
      }
      D = _mm512_loadu_pd(Tmp);
    }
    _mm512_mask_storeu_pd(Dst + J, M, D);
    Count += finiteLanes512(D, M);
    J += Rem >= 8 ? 8 : Rem;
  }
  return Count;
}

OPTOCT_TARGET_AVX512
bool spanLeqAvx512(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d VA = _mm512_loadu_pd(A + J);
    __m512d VB = _mm512_loadu_pd(B + J);
    if (_mm512_cmp_pd_mask(VA, VB, _CMP_GT_OQ) != 0)
      return false;
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d VA = _mm512_maskz_loadu_pd(M, A + J);
    __m512d VB = _mm512_maskz_loadu_pd(M, B + J);
    if (_mm512_mask_cmp_pd_mask(M, VA, VB, _CMP_GT_OQ) != 0)
      return false;
  }
  return true;
}

OPTOCT_TARGET_AVX512
bool spanEqAvx512(const double *A, const double *B, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d VA = _mm512_loadu_pd(A + J);
    __m512d VB = _mm512_loadu_pd(B + J);
    if (_mm512_cmp_pd_mask(VA, VB, _CMP_NEQ_UQ) != 0)
      return false;
  }
  if (J != Len) {
    __mmask8 M = tailMask(Len - J);
    __m512d VA = _mm512_maskz_loadu_pd(M, A + J);
    __m512d VB = _mm512_maskz_loadu_pd(M, B + J);
    if (_mm512_mask_cmp_pd_mask(M, VA, VB, _CMP_NEQ_UQ) != 0)
      return false;
  }
  return true;
}

OPTOCT_TARGET_AVX512
void minPlusRow2Avx512(double *Dst, const double *RowA, double A,
                       const double *RowB, double B, std::size_t Len) {
  std::size_t J = 0;
  __m512d VA = _mm512_set1_pd(A);
  __m512d VB = _mm512_set1_pd(B);
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_loadu_pd(Dst + J);
    __m512d TA = _mm512_add_pd(VA, _mm512_loadu_pd(RowA + J));
    __m512d TB = _mm512_add_pd(VB, _mm512_loadu_pd(RowB + J));
    D = _mm512_min_pd(D, _mm512_min_pd(TA, TB));
    _mm512_storeu_pd(Dst + J, D);
  }
  for (; J != Len; ++J) {
    double T1 = A + RowA[J];
    double T2 = B + RowB[J];
    double T = T1 < T2 ? T1 : T2;
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_TARGET_AVX512
void minPlusRow1Avx512(double *Dst, const double *RowA, double A,
                       std::size_t Len) {
  std::size_t J = 0;
  __m512d VA = _mm512_set1_pd(A);
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_loadu_pd(Dst + J);
    __m512d T = _mm512_add_pd(VA, _mm512_loadu_pd(RowA + J));
    _mm512_storeu_pd(Dst + J, _mm512_min_pd(D, T));
  }
  for (; J != Len; ++J) {
    double T = A + RowA[J];
    if (T < Dst[J])
      Dst[J] = T;
  }
}

OPTOCT_TARGET_AVX512
void strengthenRowAvx512(double *Dst, const double *T, double Di,
                         std::size_t Len) {
  std::size_t J = 0;
  __m512d VD = _mm512_set1_pd(Di);
  __m512d Half = _mm512_set1_pd(0.5);
  for (; J + 8 <= Len; J += 8) {
    __m512d S = _mm512_mul_pd(_mm512_add_pd(VD, _mm512_loadu_pd(T + J)), Half);
    __m512d D = _mm512_loadu_pd(Dst + J);
    _mm512_storeu_pd(Dst + J, _mm512_min_pd(D, S));
  }
  for (; J != Len; ++J) {
    double S = (Di + T[J]) * 0.5;
    if (S < Dst[J])
      Dst[J] = S;
  }
}

OPTOCT_TARGET_AVX512
void minRowsAvx512(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_loadu_pd(Dst + J);
    __m512d S = _mm512_loadu_pd(Src + J);
    _mm512_storeu_pd(Dst + J, _mm512_min_pd(D, S));
  }
  for (; J != Len; ++J)
    if (Src[J] < Dst[J])
      Dst[J] = Src[J];
}

OPTOCT_TARGET_AVX512
void maxRowsAvx512(double *Dst, const double *Src, std::size_t Len) {
  std::size_t J = 0;
  for (; J + 8 <= Len; J += 8) {
    __m512d D = _mm512_loadu_pd(Dst + J);
    __m512d S = _mm512_loadu_pd(Src + J);
    _mm512_storeu_pd(Dst + J, _mm512_max_pd(D, S));
  }
  for (; J != Len; ++J)
    if (Src[J] > Dst[J])
      Dst[J] = Src[J];
}

} // namespace

const SpanKernels SpanKernelsAvx512 = {
    "avx512",
    maxSpanAvx512,
    minSpanAvx512,
    maxSpanCountAvx512,
    minSpanCountAvx512,
    narrowSpanCountAvx512,
    widenSpanCountAvx512,
    spanLeqAvx512,
    spanEqAvx512,
    minPlusRow2Avx512,
    minPlusRow1Avx512,
    strengthenRowAvx512,
    minRowsAvx512,
    maxRowsAvx512,
};

} // namespace optoct

#endif // OPTOCT_SIMD_X86
