//===- oct/octagon.h - The OptOctagon abstract domain -----------*- C++ -*-===//
///
/// \file
/// The paper's optimized Octagon abstract domain element. An Octagon
/// owns a complete pre-allocated half DBM augmented with:
///
///   * a Kind (Top / Decomposed / Sparse / Dense, Section 3) describing
///     how the buffer is interpreted,
///   * the independent-component partition (Section 3.3): entries whose
///     variable pair is not inside one component are *implicitly* +inf
///     (0 on the diagonal) and may be uninitialized in the buffer,
///   * the number nni of finite entries, used for the sparsity decision
///     D = 1 - nni/(2n^2+2n) at closure points (Section 3.5).
///
/// Operators follow Section 4: they work on the submatrices induced by
/// the partition (meet merges components, join/widening intersect
/// them), and closure dispatches between the dense (Algorithm 3),
/// sparse, and decomposed algorithms of Section 5, recomputing the
/// exact partition when the sparse paths run.
///
/// Closure/consistency conventions:
///   * close() is idempotent and cached via the Closed flag; emptiness
///     is detected by closure and cached in the Empty flag.
///   * join requires closed arguments and therefore takes mutable
///     references (it closes them in place, like APRON's lazy closure);
///     its result is closed.
///   * widen never closes its first (older) argument — required for
///     termination — and leaves its result unclosed.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_OCTAGON_H
#define OPTOCT_OCT_OCTAGON_H

#include "oct/closure_common.h"
#include "oct/constraint.h"
#include "oct/dbm.h"
#include "oct/partition.h"
#include "support/budget.h"
#include "support/stats.h"

#include <string>
#include <vector>

namespace optoct {

class FullDbm; // oct/closure_reference.h — the audit recovery path

/// The four DBM types of Section 3.
enum class DbmKind {
  Top,        ///< No non-trivial inequality; empty partition.
  Decomposed, ///< Valid only inside components; lazily initialized.
  Sparse,     ///< Fully initialized, sparsity D >= t; partition exact.
  Dense,      ///< Fully initialized, treated as one whole component.
};

/// Kind tags recorded in closure trace events (Fig. 7).
enum ClosureKindTag {
  CK_Top = 0,
  CK_Dense = 1,
  CK_Sparse = 2,
  CK_Decomposed = 3,
};

/// Installs a statistics sink that all Octagon closures on the calling
/// thread report to (nullptr to disable). The sink is thread-local:
/// every worker of a parallel batch installs its own sink, so
/// concurrent analyses never share a statistics object. Used by the
/// analyzer adapters, the batch runtime, and the benches.
void setOctStatsSink(OctStats *Sink);
OctStats *octStatsSink();

/// Pre-grows the calling thread's closure scratch (pivot buffers and
/// the decomposed-closure dense submatrix temp) for octagons of up to
/// \p NumVars variables. The batch runtime's per-worker arenas call
/// this once per worker so no job re-allocates scratch mid-analysis.
void reserveClosureScratch(unsigned NumVars);

/// An element of the optimized Octagon domain over a fixed set of
/// variables 0..numVars()-1.
class Octagon {
public:
  /// Constructs the top element (no constraints).
  explicit Octagon(unsigned NumVars);

  /// Copies charge DBM-cell fuel (support/budget.h) like fresh
  /// construction — copies dominate the engine's allocation profile, so
  /// the cell budget is a deterministic memory-pressure proxy. Moves
  /// transfer the buffer and charge nothing. Defined inline: the engine
  /// copies octagons on every propagate, and an out-of-line ctor costs
  /// measurable batch throughput.
  Octagon(const Octagon &Other)
      : M(Other.M), P(Other.P), Kind(Other.Kind),
        NniExplicit(Other.NniExplicit), FullyInit(Other.FullyInit),
        Closed(Other.Closed), Empty(Other.Empty) {
    support::chargeDbmCells(M.size());
  }
  Octagon &operator=(const Octagon &Other) = default;
  Octagon(Octagon &&Other) = default;
  Octagon &operator=(Octagon &&Other) = default;

  static Octagon makeTop(unsigned NumVars) { return Octagon(NumVars); }
  static Octagon makeBottom(unsigned NumVars);

  unsigned numVars() const { return M.numVars(); }
  DbmKind kind() const { return Kind; }
  const Partition &partition() const { return P; }
  bool isClosed() const { return Closed; }

  /// Number of finite entries the materialized half DBM would have
  /// (including the implicit diagonal of uncovered variables).
  std::size_t nni() const;

  /// Sparsity D = 1 - nni/(2n^2 + 2n)  (Section 3.5).
  double sparsity() const;

  /// Emptiness test; closes first (emptiness is only decidable on the
  /// strongly closed form).
  bool isBottom();

  /// Trivially-true test: no non-trivial constraint is stored. (A
  /// non-closed octagon may still be semantically top; callers close
  /// first when they need the semantic test.)
  bool isTop() const { return !Empty && P.empty(); }

  /// Reads the conceptual full-DBM entry (i, j), honoring the implicit
  /// trivial values outside the partition.
  double entry(unsigned I, unsigned J) const;

  /// The tightest stored bound for an octagonal constraint's left-hand
  /// side (2x the variable bound for unary constraints).
  double boundOf(const OctCons &C) const {
    auto E = C.toEntry();
    return entry(E.Row, E.Col);
  }

  /// Strong closure with kind dispatch (Section 5); cached. After the
  /// call the octagon is closed (or known empty).
  void close();

  /// Lattice operators (Section 4). join closes both arguments.
  static Octagon meet(const Octagon &A, const Octagon &B);
  static Octagon join(Octagon &A, Octagon &B);
  static Octagon widen(const Octagon &Old, Octagon &New);
  static Octagon narrow(Octagon &Old, const Octagon &New);

  /// Widening with thresholds (Mine): a growing bound jumps to the
  /// smallest threshold in \p Thresholds (sorted ascending) that still
  /// dominates the new value, instead of straight to +inf. Plain
  /// widening is the empty-threshold special case.
  static Octagon widenWithThresholds(const Octagon &Old, Octagon &New,
                                     const std::vector<double> &Thresholds);

  /// Inclusion gamma(this) ⊆ gamma(Other); closes *this.
  bool leq(Octagon &Other);
  bool equals(Octagon &Other);

  /// Meets with one octagonal constraint, then restores closure
  /// incrementally (Section 5.6) when the octagon was closed.
  void addConstraint(const OctCons &C);

  /// Meets with several constraints at once (single incremental-closure
  /// pass over all touched variables).
  void addConstraints(const std::vector<OctCons> &Cs);

  /// Assignment transfer function x := e. Exact for the octagonal forms
  /// x := c, x := +-y + c (including y == x); otherwise falls back to
  /// the interval approximation of e.
  void assign(unsigned X, const LinExpr &E);

  /// Forgets all constraints on \p X (non-deterministic assignment).
  void havoc(unsigned X);

  /// Variable bounds [lo, hi] of \p V; closes first.
  Interval bounds(unsigned V);

  /// Interval value of a linear expression under the current bounds.
  Interval evalInterval(const LinExpr &E);

  /// All non-trivial constraints of the (closed) octagon, without
  /// coherent duplicates. Closes first.
  std::vector<OctCons> constraints();

  /// Appends \p Count fresh unconstrained variables (indices at the
  /// end). Preserves closure.
  void addVars(unsigned Count);

  /// Removes the last \p Count variables and all their constraints.
  /// Requires a closed octagon to preserve the remaining relations.
  void removeTrailingVars(unsigned Count);

  /// Human-readable dump (for tests/examples).
  std::string str(const std::vector<std::string> *Names = nullptr);

private:
  struct PrivateTag {};
  Octagon(unsigned NumVars, PrivateTag); ///< No buffer initialization.

  double entryRaw(unsigned I, unsigned J) const { return M.get(I, J); }

  /// True when every entry of the buffer is meaningful.
  bool fullyInit() const { return FullyInit; }

  /// Makes the whole buffer meaningful by materializing the implicit
  /// trivial entries outside the partition.
  void materialize();

  /// Merges partition blocks, initializing the cross entries between
  /// previously distinct blocks to +inf. Returns the merged block index.
  int mergeComponentsInit(const std::vector<std::size_t> &CompIndices);

  /// Ensures U and V are covered and share a block (initializing new
  /// trivial entries as needed).
  void relateInit(unsigned U, unsigned V);

  /// Writes one full-DBM entry assuming its pair is inside a component.
  void setEntry(unsigned I, unsigned J, double Value);

  /// Closure back ends (Section 5.2-5.5).
  void closeMonolithic();
  void closeDecomposed();

  /// Kind dispatch of close() without the audit wrapper.
  void closeInner();

  /// Audited closure (support/audit.h): snapshots the pre-closure
  /// element, runs closeInner, validates the result (and, on sampled
  /// closures, cross-checks it against the reference closure); on a
  /// failed check discards the DBM and recomputes from the snapshot via
  /// closureFullReference so the analysis continues soundly.
  void closeAudited();

  /// Validation half of the audit: zero diagonal, no NaN, closedness
  /// spot-checks. On success returns true; on failure fills \p Defect.
  bool auditValidate(std::string &Defect);

  /// Replaces this octagon's state with the already-closed reference
  /// matrix \p Ref (the recovery path; also used when a cross-check
  /// disagreement makes the optimized result untrustworthy).
  void adoptReferenceClosure(const FullDbm &Ref);

  /// Strengthening phase of the decomposed closure: merges components
  /// holding finite unary bounds, then strengthens (Section 5.4).
  void strengthenAndMerge();

  /// Incremental closure after constraints touching \p Touched
  /// (Section 5.6).
  void incrementalClose(const std::vector<unsigned> &Touched);

  /// Recomputes Kind from the partition/sparsity after a closure.
  void reclassify();

  /// Forgets X's constraints and removes it from the partition
  /// (expects a closed octagon so no transitive information is lost).
  void forgetVar(unsigned X);

  /// Exact assignment x := x + c: shifts all bounds mentioning x.
  /// Preserves closure.
  void shiftVar(unsigned X, double C);

  /// Exact assignment x := -x + c: swaps x's positive/negative rows and
  /// shifts. Preserves closure.
  void negateShiftVar(unsigned X, double C);

  void markEmpty();

  HalfDbm M;
  Partition P;
  DbmKind Kind = DbmKind::Top;
  std::size_t NniExplicit = 0; ///< Finite entries inside components.
  bool FullyInit = false;
  bool Closed = true; ///< Top is closed.
  bool Empty = false;

  static ClosureScratch &scratch();
  friend void reserveClosureScratch(unsigned NumVars);
};

} // namespace optoct

#endif // OPTOCT_OCT_OCTAGON_H
