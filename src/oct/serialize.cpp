//===- oct/serialize.cpp - Octagon text serialization ---------------------===//

#include "oct/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <new>
#include <sstream>
#include <vector>

using namespace optoct;

std::string optoct::serializeOctagon(Octagon &O) {
  std::string Out;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "octagon %u\n", O.numVars());
  Out += Buf;
  if (O.isBottom()) {
    Out += "bottom\nend\n";
    return Out;
  }
  std::vector<OctCons> Cs;
  for (const OctCons &C : O.constraints()) {
    // Closure arithmetic can overflow a pair of huge finite bounds to
    // -inf without tripping the (diagonal-based) emptiness check. A
    // -inf upper bound is unsatisfiable, so the element *is* empty —
    // serialize it as the canonical bottom rather than emit a token
    // the parser rightly rejects. NaN would mean corrupted state; it
    // constrains nothing (the deserializer's addConstraints would drop
    // it), so skipping it is the faithful round trip.
    if (std::isnan(C.Bound))
      continue;
    if (C.Bound == -Infinity) {
      Out += "bottom\nend\n";
      return Out;
    }
    Cs.push_back(C);
  }
  // constraints() iterates in representation order — global DBM rows
  // for dense octagons, per-component rows for decomposed ones. The
  // closed form is a canonical *set*, so sort the emission into one
  // canonical sequence: identical elements serialize to identical
  // bytes whichever kernel or representation produced them (the
  // daemon's invariant cache replays these bytes across processes
  // whose OPTOCT_* configuration may differ).
  std::sort(Cs.begin(), Cs.end(), [](const OctCons &A, const OctCons &B) {
    unsigned AJ = A.isUnary() ? A.I : A.J, BJ = B.isUnary() ? B.I : B.J;
    if (AJ != BJ)
      return AJ < BJ;
    if (A.I != B.I)
      return A.I < B.I;
    if (A.CoefI != B.CoefI)
      return A.CoefI < B.CoefI;
    if (A.CoefJ != B.CoefJ)
      return A.CoefJ < B.CoefJ;
    return A.Bound < B.Bound;
  });
  for (const OctCons &C : Cs) {
    // %.17g round-trips doubles exactly.
    std::snprintf(Buf, sizeof(Buf), "c %d %u %d %u %.17g\n", C.CoefI, C.I,
                  C.CoefJ, C.isUnary() ? C.I : C.J, C.Bound);
    Out += Buf;
  }
  Out += "end\n";
  return Out;
}

std::optional<Octagon>
optoct::deserializeOctagon(const std::string &Text, std::string &Error) {
  std::istringstream In(Text);
  std::string Word;
  if (!(In >> Word) || Word != "octagon") {
    Error = "expected 'octagon <numVars>' header";
    return std::nullopt;
  }
  unsigned NumVars = 0;
  if (!(In >> NumVars)) {
    Error = "malformed variable count";
    return std::nullopt;
  }
  if (NumVars > MaxSerializedVars) {
    Error = "variable count exceeds limit";
    return std::nullopt;
  }
  try {
    Octagon O(NumVars);
    std::vector<OctCons> Cs;
    bool Bottom = false;
    while (In >> Word) {
      if (Word == "end") {
        if (Bottom)
          return Octagon::makeBottom(NumVars);
        O.addConstraints(Cs);
        return O;
      }
      if (Word == "bottom") {
        Bottom = true;
        continue;
      }
      if (Word != "c") {
        Error = "unexpected token '" + Word + "'";
        return std::nullopt;
      }
      OctCons C{};
      if (!(In >> C.CoefI >> C.I >> C.CoefJ >> C.J >> C.Bound)) {
        Error = "malformed constraint line";
        return std::nullopt;
      }
      if ((C.CoefI != 1 && C.CoefI != -1) ||
          (C.CoefJ != 0 && C.CoefJ != 1 && C.CoefJ != -1) || C.I >= NumVars ||
          C.J >= NumVars || (C.CoefJ != 0 && C.I == C.J)) {
        Error = "constraint out of the octagon fragment";
        return std::nullopt;
      }
      Cs.push_back(C);
    }
    Error = "missing 'end'";
    return std::nullopt;
  } catch (const std::bad_alloc &) {
    Error = "octagon too large to allocate";
    return std::nullopt;
  }
}
