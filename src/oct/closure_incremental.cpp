//===- oct/closure_incremental.cpp - Incremental closure -----------------===//

#include "oct/closure_incremental.h"

#include "oct/closure_dense.h"
#include "oct/closure_sparse.h"
#include "oct/vector_min.h"
#include "support/budget.h"
#include "support/faultinject.h"

using namespace optoct;

namespace {

/// One fused pivot-pair iteration (variable \p K) of Algorithm 3 over
/// the whole matrix, vectorized.
void pivotPassDense(HalfDbm &M, unsigned K, ClosureScratch &Scratch) {
  unsigned D = M.dim();
  double *ColK = Scratch.ColK.data();
  double *ColK1 = Scratch.ColK1.data();
  double *RowK = Scratch.RowK.data();
  double *RowK1 = Scratch.RowK1.data();
  unsigned KK = 2 * K, KK1 = 2 * K + 1;
  double OkK1 = M.at(KK, KK1);
  double Ok1K = M.at(KK1, KK);

  // Saturation hoisted out of the loop as in shortestPathDense: a +inf
  // in-block operand can never win the min, and for finite operands
  // plain + equals boundAdd on the stored R ∪ {+inf} bounds.
  const bool FinK1 = isFinite(OkK1), FinK = isFinite(Ok1K);
  for (unsigned I = 0; I != D; ++I) {
    if (I == KK || I == KK1) {
      ColK[I] = I == KK ? 0.0 : Ok1K;
      ColK1[I] = I == KK ? OkK1 : 0.0;
      continue;
    }
    double Vk = M.get(I, KK);
    double Vk1 = M.get(I, KK1);
    if (FinK1) {
      double T1 = Vk + OkK1;
      if (T1 < Vk1)
        Vk1 = T1;
    }
    if (FinK) {
      double T0 = Vk1 + Ok1K;
      if (T0 < Vk)
        Vk = T0;
    }
    M.set(I, KK, Vk);
    M.set(I, KK1, Vk1);
    ColK[I] = Vk;
    ColK1[I] = Vk1;
  }
  for (unsigned J = 0; J != D; ++J) {
    RowK[J] = ColK1[J ^ 1u];
    RowK1[J] = ColK[J ^ 1u];
  }
  for (unsigned I = 0; I != D; ++I)
    minPlusRow2(M.row(I), RowK, ColK[I], RowK1, ColK1[I], (I | 1u) + 1);
}

} // namespace

bool optoct::incrementalClosureDense(HalfDbm &M,
                                     const std::vector<unsigned> &Touched,
                                     ClosureScratch &Scratch) {
  unsigned D = M.dim();
  if (D == 0)
    return true;
  Scratch.ensure(D);
  for (unsigned K : Touched) {
    support::pollBudget();
    support::faultPoint("closure.pivot");
    pivotPassDense(M, K, Scratch);
  }
  strengthenDense(M, Scratch);

  for (unsigned I = 0; I != D; ++I)
    if (M.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    M.at(I, I) = 0.0;
  return true;
}

void optoct::incrementalClosureRestricted(HalfDbm &M,
                                          const std::vector<unsigned> &Vars,
                                          const std::vector<unsigned> &Touched,
                                          ClosureScratch &Scratch) {
  if (Vars.empty())
    return;
  Scratch.ensure(M.dim());
  double *ColK = Scratch.ColK.data();
  double *ColK1 = Scratch.ColK1.data();
  double *RowK = Scratch.RowK.data();
  double *RowK1 = Scratch.RowK1.data();

  std::vector<unsigned> EVars;
  EVars.reserve(2 * Vars.size());
  for (unsigned V : Vars) {
    EVars.push_back(2 * V);
    EVars.push_back(2 * V + 1);
  }

  for (unsigned K : Touched) {
    support::pollBudget();
    support::faultPoint("closure.pivot");
    unsigned KK = 2 * K, KK1 = 2 * K + 1;
    double OkK1 = M.at(KK, KK1);
    double Ok1K = M.at(KK1, KK);

    // Same hoisted-saturation pattern as the dense pivot pass above.
    const bool FinK1 = isFinite(OkK1), FinK = isFinite(Ok1K);
    for (unsigned I : EVars) {
      if (I == KK || I == KK1) {
        ColK[I] = I == KK ? 0.0 : Ok1K;
        ColK1[I] = I == KK ? OkK1 : 0.0;
        continue;
      }
      double Vk = M.get(I, KK);
      double Vk1 = M.get(I, KK1);
      if (FinK1) {
        double T1 = Vk + OkK1;
        if (T1 < Vk1)
          Vk1 = T1;
      }
      if (FinK) {
        double T0 = Vk1 + Ok1K;
        if (T0 < Vk)
          Vk = T0;
      }
      M.set(I, KK, Vk);
      M.set(I, KK1, Vk1);
      ColK[I] = Vk;
      ColK1[I] = Vk1;
    }
    for (unsigned J : EVars) {
      RowK[J] = ColK1[J ^ 1u];
      RowK1[J] = ColK[J ^ 1u];
    }
    for (unsigned I : EVars) {
      double C1 = ColK[I];
      double C2 = ColK1[I];
      bool F1 = isFinite(C1), F2 = isFinite(C2);
      if (!F1 && !F2)
        continue;
      double *Row = M.row(I);
      unsigned Limit = I | 1u;
      for (unsigned J : EVars) {
        if (J > Limit)
          break;
        double T1 = C1 + RowK[J];
        double T2 = C2 + RowK1[J];
        double T = T1 < T2 ? T1 : T2;
        if (T < Row[J])
          Row[J] = T;
      }
    }
  }
  strengthenSparseRestricted(M, Vars, Scratch);
}
