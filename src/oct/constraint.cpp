//===- oct/constraint.cpp - Linear expression helpers --------------------===//

#include "oct/constraint.h"

#include <cstdio>

using namespace optoct;

void LinExpr::addTerm(int Coef, unsigned Var) {
  if (Coef == 0)
    return;
  for (std::size_t I = 0; I != Terms.size(); ++I) {
    if (Terms[I].second != Var)
      continue;
    Terms[I].first += Coef;
    if (Terms[I].first == 0)
      Terms.erase(Terms.begin() + static_cast<std::ptrdiff_t>(I));
    return;
  }
  Terms.emplace_back(Coef, Var);
}

std::string LinExpr::str() const {
  std::string Out;
  char Buf[48];
  for (const auto &[C, V] : Terms) {
    int Abs = C >= 0 ? C : -C;
    const char *Sign = Out.empty() ? (C < 0 ? "-" : "") : (C < 0 ? " - " : " + ");
    if (Abs == 1)
      std::snprintf(Buf, sizeof(Buf), "%sv%u", Sign, V);
    else
      std::snprintf(Buf, sizeof(Buf), "%s%d*v%u", Sign, Abs, V);
    Out += Buf;
  }
  if (Const != 0.0 || Out.empty()) {
    double Abs = Const >= 0 ? Const : -Const;
    const char *Sign =
        Out.empty() ? (Const < 0 ? "-" : "") : (Const < 0 ? " - " : " + ");
    std::snprintf(Buf, sizeof(Buf), "%s%g", Sign, Abs);
    Out += Buf;
  }
  return Out;
}
