//===- oct/partition.cpp - Independent variable components ---------------===//

#include "oct/partition.h"

#include "oct/dbm.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace optoct;

namespace {

/// Small union-find over variable indices.
class UnionFind {
public:
  explicit UnionFind(unsigned N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0u);
  }

  unsigned find(unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  void merge(unsigned A, unsigned B) { Parent[find(A)] = find(B); }

private:
  std::vector<unsigned> Parent;
};

} // namespace

Partition Partition::whole(unsigned NumVars) {
  Partition P(NumVars);
  if (NumVars == 0)
    return P;
  std::vector<unsigned> All(NumVars);
  std::iota(All.begin(), All.end(), 0u);
  P.Comps.push_back(std::move(All));
  std::fill(P.CompOf.begin(), P.CompOf.end(), 0);
  return P;
}

std::size_t Partition::coveredVars() const {
  std::size_t Total = 0;
  for (const auto &C : Comps)
    Total += C.size();
  return Total;
}

std::size_t Partition::addSingleton(unsigned Var) {
  assert(Var < CompOf.size() && "variable out of range");
  if (CompOf[Var] >= 0)
    return static_cast<std::size_t>(CompOf[Var]);
  Comps.push_back({Var});
  CompOf[Var] = static_cast<int>(Comps.size() - 1);
  return Comps.size() - 1;
}

std::size_t Partition::relate(unsigned U, unsigned V) {
  std::size_t CU = addSingleton(U);
  if (U == V)
    return CU;
  std::size_t CV = addSingleton(V);
  CU = static_cast<std::size_t>(CompOf[U]); // may have changed via push
  if (CU == CV)
    return CU;
  return static_cast<std::size_t>(
      mergeComponents({CU, CV}));
}

int Partition::mergeComponents(const std::vector<std::size_t> &CompIndices) {
  if (CompIndices.empty())
    return -1;
  std::vector<std::size_t> Unique(CompIndices);
  std::sort(Unique.begin(), Unique.end());
  Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());
  if (Unique.size() == 1)
    return static_cast<int>(Unique[0]);

  std::vector<unsigned> Merged;
  for (std::size_t C : Unique)
    Merged.insert(Merged.end(), Comps[C].begin(), Comps[C].end());
  std::sort(Merged.begin(), Merged.end());

  // Replace the first listed block and erase the rest (back to front so
  // indices stay valid). Erased indices are all greater than Unique[0],
  // so the merged block keeps index Unique[0].
  Comps[Unique[0]] = std::move(Merged);
  for (std::size_t I = Unique.size(); I-- > 1;)
    Comps.erase(Comps.begin() + static_cast<std::ptrdiff_t>(Unique[I]));
  rebuildIndex();
  return static_cast<int>(Unique[0]);
}

void Partition::removeVar(unsigned Var) {
  assert(Var < CompOf.size() && "variable out of range");
  int C = CompOf[Var];
  if (C < 0)
    return;
  auto &Block = Comps[static_cast<std::size_t>(C)];
  Block.erase(std::find(Block.begin(), Block.end(), Var));
  if (Block.empty())
    Comps.erase(Comps.begin() + C);
  rebuildIndex();
}

std::vector<unsigned> Partition::sortedVars() const {
  std::vector<unsigned> Vars;
  for (const auto &C : Comps)
    Vars.insert(Vars.end(), C.begin(), C.end());
  std::sort(Vars.begin(), Vars.end());
  return Vars;
}

Partition Partition::unionMerge(const Partition &A, const Partition &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  // A whole input absorbs anything it is merged with. Dense/Dense meets
  // and narrowings hit this on every call, so skip the union-find.
  if (A.isWhole())
    return A;
  if (B.isWhole())
    return B;
  unsigned N = A.numVars();
  UnionFind UF(N);
  std::vector<bool> Covered(N, false);
  for (const Partition *P : {&A, &B})
    for (const auto &C : P->Comps) {
      for (unsigned Var : C)
        Covered[Var] = true;
      for (std::size_t I = 1; I < C.size(); ++I)
        UF.merge(C[0], C[I]);
    }

  Partition Result(N);
  std::vector<int> RootToComp(N, -1);
  for (unsigned Var = 0; Var != N; ++Var) {
    if (!Covered[Var])
      continue;
    unsigned Root = UF.find(Var);
    if (RootToComp[Root] < 0) {
      RootToComp[Root] = static_cast<int>(Result.Comps.size());
      Result.Comps.emplace_back();
    }
    Result.Comps[static_cast<std::size_t>(RootToComp[Root])].push_back(Var);
  }
  Result.rebuildIndex();
  return Result;
}

Partition Partition::refine(const Partition &A, const Partition &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  // Refining against a whole partition changes nothing: every variable
  // is covered by the whole side and no block of the other side splits.
  // Dense/Dense joins and widenings hit this on every call.
  if (A.isWhole())
    return B;
  if (B.isWhole())
    return A;
  unsigned N = A.numVars();
  Partition Result(N);
  // A variable survives iff covered by both; two survivors share a block
  // iff they share a block in both inputs. Key each survivor by its
  // (A-block, B-block) pair.
  std::vector<std::vector<int>> Key; // per new block: {a, b}
  for (unsigned Var = 0; Var != N; ++Var) {
    int CA = A.CompOf[Var], CB = B.CompOf[Var];
    if (CA < 0 || CB < 0)
      continue;
    int Found = -1;
    for (std::size_t I = 0; I != Key.size(); ++I)
      if (Key[I][0] == CA && Key[I][1] == CB) {
        Found = static_cast<int>(I);
        break;
      }
    if (Found < 0) {
      Found = static_cast<int>(Key.size());
      Key.push_back({CA, CB});
      Result.Comps.emplace_back();
    }
    Result.Comps[static_cast<std::size_t>(Found)].push_back(Var);
  }
  Result.rebuildIndex();
  return Result;
}

bool Partition::coarsens(const Partition &Finer) const {
  assert(numVars() == Finer.numVars() && "dimension mismatch");
  for (const auto &Block : Finer.Comps) {
    int C = CompOf[Block[0]];
    if (C < 0)
      return false;
    for (unsigned Var : Block)
      if (CompOf[Var] != C)
        return false;
  }
  return true;
}

bool Partition::operator==(const Partition &Other) const {
  if (CompOf.size() != Other.CompOf.size() ||
      Comps.size() != Other.Comps.size())
    return false;
  // Blocks are sorted internally; compare as canonical sorted multisets.
  auto Canon = [](const Partition &P) {
    std::vector<std::vector<unsigned>> C = P.Comps;
    std::sort(C.begin(), C.end());
    return C;
  };
  return Canon(*this) == Canon(Other);
}

void Partition::rebuildIndex() {
  std::fill(CompOf.begin(), CompOf.end(), -1);
  for (std::size_t C = 0; C != Comps.size(); ++C)
    for (unsigned Var : Comps[C])
      CompOf[Var] = static_cast<int>(C);
}

Partition optoct::extractPartition(const HalfDbm &M,
                                   const std::vector<unsigned> &Vars) {
  unsigned N = M.numVars();
  Partition Result(N);

  for (std::size_t A = 0; A != Vars.size(); ++A) {
    unsigned V = Vars[A];
    // Unary constraints: the off-diagonal entries of the 2x2 diagonal
    // block encode +-2v <= c.
    if (isFinite(M.at(2 * V, 2 * V + 1)) || isFinite(M.at(2 * V + 1, 2 * V)))
      Result.addSingleton(V);
    for (std::size_t B = 0; B != A; ++B) {
      unsigned U = Vars[B];
      unsigned Lo = U < V ? U : V, Hi = U < V ? V : U;
      bool Related = false;
      for (unsigned I = 0; I != 2 && !Related; ++I)
        for (unsigned J = 0; J != 2 && !Related; ++J)
          Related = isFinite(M.at(2 * Hi + I, 2 * Lo + J));
      if (Related)
        Result.relate(U, V);
    }
  }
  return Result;
}

Partition optoct::extractPartition(const HalfDbm &M) {
  std::vector<unsigned> Vars(M.numVars());
  std::iota(Vars.begin(), Vars.end(), 0u);
  return extractPartition(M, Vars);
}
