//===- oct/partition.h - Independent variable components --------*- C++ -*-===//
///
/// \file
/// Independent components of an octagon (Section 3.3): a partition of a
/// subset V' of the variables such that variables in different blocks are
/// related only by trivial inequalities. Variables outside every block
/// participate in no non-trivial inequality at all (not even unary ones).
///
/// The octagon operators maintain this partition online:
///   * meet induces the union of the connectivity relations, i.e. blocks
///     that overlap across the two inputs merge;
///   * join and widening induce the intersection of the relations, i.e.
///     the common refinement of the two partitions (Section 4.3);
///   * strengthening merges blocks holding finite unary bounds
///     (Section 5.4);
///   * the sparse/decomposed closures recompute the partition exactly
///     (Section 3.5).
///
/// Maintained partitions may over-approximate the exact one (coarser
/// blocks, never finer), which costs operations but never precision.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_OCT_PARTITION_H
#define OPTOCT_OCT_PARTITION_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace optoct {

class HalfDbm;

/// A partition of a subset of {0, ..., NumVars-1} into disjoint sorted
/// blocks. The empty partition (no blocks) describes the Top octagon.
class Partition {
public:
  Partition() = default;
  explicit Partition(unsigned NumVars) : CompOf(NumVars, -1) {}

  /// The single-block partition {0..NumVars-1}; describes a Dense DBM.
  static Partition whole(unsigned NumVars);

  unsigned numVars() const { return static_cast<unsigned>(CompOf.size()); }
  std::size_t numComponents() const { return Comps.size(); }
  bool empty() const { return Comps.empty(); }

  /// The block with index \p C, sorted ascending.
  const std::vector<unsigned> &component(std::size_t C) const {
    return Comps[C];
  }

  /// Index of the block containing \p Var, or -1 if Var is in no block.
  int componentOf(unsigned Var) const { return CompOf[Var]; }
  bool contains(unsigned Var) const { return CompOf[Var] >= 0; }

  /// Sum over blocks of their sizes (|V'|).
  std::size_t coveredVars() const;

  /// Ensures \p Var belongs to some block, creating a singleton if not.
  /// Returns the block index.
  std::size_t addSingleton(unsigned Var);

  /// Records a non-trivial relation between \p U and \p V: merges their
  /// blocks (creating singletons as needed). Returns the index of the
  /// resulting block.
  std::size_t relate(unsigned U, unsigned V);

  /// Merges all listed blocks into one. \p CompIndices need not be
  /// sorted; duplicates are fine. Returns the resulting block index, or
  /// -1 if the list was empty.
  int mergeComponents(const std::vector<std::size_t> &CompIndices);

  /// Removes \p Var from its block (no-op if uncovered). The remaining
  /// block is kept as-is — a conservative over-approximation, since
  /// removing a cut variable could split it.
  void removeVar(unsigned Var);

  /// All covered variables, ascending.
  std::vector<unsigned> sortedVars() const;

  /// Grows (or shrinks) the variable universe. When shrinking, all
  /// removed variables must already be uncovered.
  void resizeVars(unsigned NewNumVars) {
    for (std::size_t V = NewNumVars; V < CompOf.size(); ++V)
      assert(CompOf[V] < 0 && "shrinking over a covered variable");
    CompOf.resize(NewNumVars, -1);
  }

  /// True for the single-block partition covering every variable.
  bool isWhole() const {
    return Comps.size() == 1 && Comps[0].size() == CompOf.size();
  }

  /// Partition induced by the union of the connectivity relations
  /// (meet): blocks from either input that share a variable merge.
  static Partition unionMerge(const Partition &A, const Partition &B);

  /// Partition induced by the intersection of the connectivity relations
  /// (join, widening): the common refinement; variables covered by only
  /// one input drop out.
  static Partition refine(const Partition &A, const Partition &B);

  /// True if every block of \p Finer is contained in a block of *this —
  /// i.e. *this is coarser or equal (over-approximates Finer).
  bool coarsens(const Partition &Finer) const;

  bool operator==(const Partition &Other) const;

private:
  void rebuildIndex();

  std::vector<std::vector<unsigned>> Comps;
  std::vector<int> CompOf;
};

/// Computes the exact independent components of the (fully meaningful)
/// entries of \p M restricted to \p Vars: U and V are related iff some
/// inequality between them is finite; a variable with no finite entry at
/// all is uncovered. Runs in O(|Vars|^2).
Partition extractPartition(const HalfDbm &M, const std::vector<unsigned> &Vars);

/// Exact components over all variables of \p M (requires M fully
/// initialized).
Partition extractPartition(const HalfDbm &M);

} // namespace optoct

#endif // OPTOCT_OCT_PARTITION_H
