//===- zone/zone_domain.cpp - Zone (DBM) abstract domain ------------------===//

#include "zone/zone_domain.h"

#include "oct/value.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace optoct;
using namespace optoct::zone;

ZoneDomain::ZoneDomain(unsigned NumVars)
    : N(NumVars),
      M((static_cast<std::size_t>(NumVars) + 1) * (NumVars + 1)) {
  M.fill(Infinity);
  for (unsigned I = 0; I != dim(); ++I)
    at(I, I) = 0.0;
}

ZoneDomain ZoneDomain::makeBottom(unsigned NumVars) {
  ZoneDomain Z(NumVars);
  Z.markEmpty();
  return Z;
}

bool ZoneDomain::isBottom() {
  close();
  return Empty;
}

bool ZoneDomain::isTop() const {
  if (Empty)
    return false;
  for (unsigned I = 0; I != dim(); ++I)
    for (unsigned J = 0; J != dim(); ++J)
      if (I != J && isFinite(at(I, J)))
        return false;
  return true;
}

void ZoneDomain::close() {
  if (Closed || Empty)
    return;
  unsigned D = dim();
  for (unsigned K = 0; K != D; ++K)
    for (unsigned I = 0; I != D; ++I) {
      double Ik = at(I, K);
      if (!isFinite(Ik))
        continue;
      for (unsigned J = 0; J != D; ++J) {
        double Path = Ik + at(K, J);
        if (Path < at(I, J))
          at(I, J) = Path;
      }
    }
  for (unsigned I = 0; I != D; ++I)
    if (at(I, I) < 0.0) {
      markEmpty();
      return;
    }
  Closed = true;
}

ZoneDomain ZoneDomain::meet(const ZoneDomain &A, const ZoneDomain &B) {
  assert(A.N == B.N && "dimension mismatch");
  if (A.Empty || B.Empty)
    return makeBottom(A.N);
  ZoneDomain R(A.N);
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I)
    R.M[I] = std::min(A.M[I], B.M[I]);
  R.Closed = false;
  return R;
}

ZoneDomain ZoneDomain::join(ZoneDomain &A, ZoneDomain &B) {
  assert(A.N == B.N && "dimension mismatch");
  A.close();
  B.close();
  if (A.Empty)
    return B;
  if (B.Empty)
    return A;
  ZoneDomain R(A.N);
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I)
    R.M[I] = std::max(A.M[I], B.M[I]);
  R.Closed = true; // max of closed DBMs is closed
  return R;
}

ZoneDomain ZoneDomain::widen(const ZoneDomain &Old, ZoneDomain &New) {
  static const std::vector<double> NoThresholds;
  return widenWithThresholds(Old, New, NoThresholds);
}

ZoneDomain
ZoneDomain::widenWithThresholds(const ZoneDomain &Old, ZoneDomain &New,
                                const std::vector<double> &Thresholds) {
  assert(Old.N == New.N && "dimension mismatch");
  New.close();
  if (Old.Empty)
    return New;
  if (New.Empty)
    return Old;
  ZoneDomain R(Old.N);
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I) {
    double VO = Old.M[I];
    double VN = New.M[I];
    if (VN <= VO) {
      R.M[I] = VO;
      continue;
    }
    auto It = std::lower_bound(Thresholds.begin(), Thresholds.end(), VN);
    R.M[I] = It == Thresholds.end() ? Infinity : *It;
  }
  R.Closed = false;
  return R;
}

ZoneDomain ZoneDomain::narrow(ZoneDomain &Old, const ZoneDomain &New) {
  assert(Old.N == New.N && "dimension mismatch");
  Old.close();
  if (Old.Empty || New.Empty)
    return makeBottom(Old.N);
  ZoneDomain R(Old.N);
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I)
    R.M[I] = isFinite(Old.M[I]) ? Old.M[I] : New.M[I];
  R.Closed = false;
  return R;
}

bool ZoneDomain::leq(ZoneDomain &Other) {
  assert(N == Other.N && "dimension mismatch");
  close();
  if (Empty)
    return true;
  if (Other.Empty)
    return false;
  for (std::size_t I = 0, E = M.size(); I != E; ++I)
    if (M[I] > Other.M[I])
      return false;
  return true;
}

bool ZoneDomain::equals(ZoneDomain &Other) {
  assert(N == Other.N && "dimension mismatch");
  close();
  Other.close();
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  for (std::size_t I = 0, E = M.size(); I != E; ++I)
    if (M[I] != Other.M[I])
      return false;
  return true;
}

void ZoneDomain::addConstraint(const OctCons &C) { addConstraints({C}); }

void ZoneDomain::addConstraints(const std::vector<OctCons> &Cs) {
  if (Empty)
    return;
  for (const OctCons &C : Cs) {
    if (C.isUnary()) {
      // v <= c is v - zero <= c (entry (0, v+1)); -v <= c is (v+1, 0).
      if (C.CoefI > 0)
        tighten(0, C.I + 1, C.Bound);
      else
        tighten(C.I + 1, 0, C.Bound);
      continue;
    }
    if (C.CoefI == 1 && C.CoefJ == -1) { // vi - vj <= c
      tighten(C.J + 1, C.I + 1, C.Bound);
      continue;
    }
    if (C.CoefI == -1 && C.CoefJ == 1) { // vj - vi <= c
      tighten(C.I + 1, C.J + 1, C.Bound);
      continue;
    }
    // Sums are not representable: absorb each side through the
    // partner's bound (as the interval domain does). Requires closure
    // for tight partner bounds; a plain read keeps it sound.
    close();
    if (Empty)
      return;
    // CoefI*vi + CoefJ*vj <= c, with CoefI == CoefJ == +-1.
    auto lower = [&](unsigned V) { return -at(V + 1, 0); }; // -(-v<=c)
    auto upper = [&](unsigned V) { return at(0, V + 1); };
    if (C.CoefI == 1) { // vi + vj <= c
      double LoJ = lower(C.J);
      if (LoJ != -Infinity)
        tighten(0, C.I + 1, C.Bound - LoJ);
      double LoI = lower(C.I);
      if (LoI != -Infinity)
        tighten(0, C.J + 1, C.Bound - LoI);
    } else { // -vi - vj <= c, i.e. vi + vj >= -c
      double HiJ = upper(C.J);
      if (HiJ != Infinity)
        tighten(C.I + 1, 0, C.Bound + HiJ);
      double HiI = upper(C.I);
      if (HiI != Infinity)
        tighten(C.J + 1, 0, C.Bound + HiI);
    }
  }
}

Interval ZoneDomain::evalInterval(const LinExpr &E) {
  close();
  if (Empty)
    return {Infinity, -Infinity};
  double Lo = E.Const, Hi = E.Const;
  for (const auto &[Coef, Var] : E.Terms) {
    if (Coef == 0)
      continue;
    double VLo = at(Var + 1, 0) == Infinity ? -Infinity : -at(Var + 1, 0);
    double VHi = at(0, Var + 1);
    double C = static_cast<double>(Coef);
    if (Coef > 0) {
      Lo += C * VLo;
      Hi += C * VHi;
    } else {
      Lo += C * VHi;
      Hi += C * VLo;
    }
  }
  return {Lo, Hi};
}

void ZoneDomain::forgetRow(unsigned X) {
  unsigned V = X + 1;
  for (unsigned I = 0; I != dim(); ++I) {
    if (I == V)
      continue;
    at(I, V) = Infinity;
    at(V, I) = Infinity;
  }
}

void ZoneDomain::assign(unsigned X, const LinExpr &E) {
  if (Empty)
    return;
  if (const auto *Term = E.octagonalTerm()) {
    int A = Term->first;
    unsigned Y = Term->second;
    if (A == 1 && Y == X) {
      // x := x + c: shift x's row/column.
      unsigned V = X + 1;
      for (unsigned I = 0; I != dim(); ++I) {
        if (I == V)
          continue;
        at(I, V) += E.Const; // bound on x - var(I)
        at(V, I) -= E.Const; // bound on var(I) - x
      }
      return;
    }
    if (A == 1) {
      // x := y + c: difference-exact.
      close();
      if (Empty)
        return;
      forgetRow(X);
      tighten(Y + 1, X + 1, E.Const);  // x - y <= c
      tighten(X + 1, Y + 1, -E.Const); // y - x <= -c
      close();
      return;
    }
    // x := -y + c is not a difference; fall through to intervals.
  }
  Interval Value = evalInterval(E); // closes
  if (Empty)
    return;
  if (Value.isBottom()) {
    markEmpty();
    return;
  }
  forgetRow(X);
  if (isFinite(Value.Hi))
    tighten(0, X + 1, Value.Hi);
  if (Value.Lo != -Infinity)
    tighten(X + 1, 0, -Value.Lo);
  close();
}

void ZoneDomain::havoc(unsigned X) {
  if (Empty)
    return;
  close();
  if (Empty)
    return;
  forgetRow(X);
}

Interval ZoneDomain::bounds(unsigned V) {
  close();
  if (Empty)
    return {Infinity, -Infinity};
  Interval Iv;
  if (isFinite(at(0, V + 1)))
    Iv.Hi = at(0, V + 1);
  if (isFinite(at(V + 1, 0)))
    Iv.Lo = -at(V + 1, 0);
  return Iv;
}

double ZoneDomain::boundOf(const OctCons &C) {
  close();
  if (Empty)
    return -Infinity;
  if (C.isUnary()) {
    Interval B = bounds(C.I);
    double Up = C.CoefI > 0 ? B.Hi : (B.Lo == -Infinity ? Infinity : -B.Lo);
    return 2.0 * Up;
  }
  if (C.CoefI == 1 && C.CoefJ == -1)
    return at(C.J + 1, C.I + 1);
  if (C.CoefI == -1 && C.CoefJ == 1)
    return at(C.I + 1, C.J + 1);
  // Sums: interval precision.
  auto upper = [&](int Coef, unsigned V) {
    Interval B = bounds(V);
    return Coef > 0 ? B.Hi : (B.Lo == -Infinity ? Infinity : -B.Lo);
  };
  return upper(C.CoefI, C.I) + upper(C.CoefJ, C.J);
}

void ZoneDomain::addVars(unsigned Count) {
  if (Count == 0)
    return;
  ZoneDomain Bigger(N + Count);
  for (unsigned I = 0; I != dim(); ++I)
    for (unsigned J = 0; J != dim(); ++J)
      Bigger.at(I, J) = at(I, J);
  Bigger.Closed = Closed;
  Bigger.Empty = Empty;
  *this = std::move(Bigger);
}

void ZoneDomain::removeTrailingVars(unsigned Count) {
  assert(Count <= N && "removing more variables than exist");
  if (Count == 0)
    return;
  if (!Empty)
    close();
  ZoneDomain Smaller(N - Count);
  if (Empty) {
    Smaller.markEmpty();
  } else {
    for (unsigned I = 0; I != Smaller.dim(); ++I)
      for (unsigned J = 0; J != Smaller.dim(); ++J)
        Smaller.at(I, J) = at(I, J);
    Smaller.Closed = true;
  }
  *this = std::move(Smaller);
}

std::string ZoneDomain::str(const std::vector<std::string> *Names) {
  if (Empty)
    return "bottom";
  close();
  if (Empty)
    return "bottom";
  auto Name = [&](unsigned V) {
    if (Names && V < Names->size())
      return (*Names)[V];
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "v%u", V);
    return std::string(Buf);
  };
  std::string Out;
  char Buf[96];
  for (unsigned I = 0; I != dim(); ++I)
    for (unsigned J = 0; J != dim(); ++J) {
      if (I == J || !isFinite(at(I, J)))
        continue;
      if (!Out.empty())
        Out += " && ";
      // + 0.0 canonicalizes negative zero so printed bounds never
      // depend on which sign of zero survived a min tie.
      if (I == 0)
        std::snprintf(Buf, sizeof(Buf), "%s <= %g", Name(J - 1).c_str(),
                      at(I, J) + 0.0);
      else if (J == 0)
        std::snprintf(Buf, sizeof(Buf), "%s >= %g", Name(I - 1).c_str(),
                      -at(I, J) + 0.0);
      else
        std::snprintf(Buf, sizeof(Buf), "%s - %s <= %g", Name(J - 1).c_str(),
                      Name(I - 1).c_str(), at(I, J) + 0.0);
      Out += Buf;
    }
  return Out.empty() ? "top" : Out;
}
