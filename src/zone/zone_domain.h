//===- zone/zone_domain.h - Zone (DBM) abstract domain ----------*- C++ -*-===//
///
/// \file
/// The zone domain: conjunctions of difference constraints
/// `v_i - v_j <= c` and bounds `±v_i <= c`, the weakly-relational
/// stepping stone between intervals and octagons (it cannot express
/// sums `v_i + v_j <= c`). Implemented the classic way — an
/// (n+1)×(n+1) DBM over the variables plus a zero variable, closed by
/// plain Floyd-Warshall (no strengthening step and no coherence,
/// which is exactly the machinery the octagon's ± encoding adds).
///
/// It implements the same interface as optoct::Octagon, so the
/// analyzer, the comparison bench, and the precision-ladder tests
/// (interval ⊑ zone ⊑ octagon) run over it unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_ZONE_ZONE_DOMAIN_H
#define OPTOCT_ZONE_ZONE_DOMAIN_H

#include "oct/constraint.h"
#include "support/aligned.h"

#include <string>
#include <vector>

namespace optoct::zone {

/// A zone over n variables: DBM of dimension n+1 where index 0 is the
/// constant-zero variable and index v+1 stands for v. Entry
/// M(i,j) = c encodes var(j) - var(i) <= c.
class ZoneDomain {
public:
  explicit ZoneDomain(unsigned NumVars);

  static ZoneDomain makeTop(unsigned NumVars) { return ZoneDomain(NumVars); }
  static ZoneDomain makeBottom(unsigned NumVars);

  unsigned numVars() const { return N; }
  bool isBottom();
  bool isTop() const;

  /// Floyd-Warshall closure; cached via the Closed flag.
  void close();

  static ZoneDomain meet(const ZoneDomain &A, const ZoneDomain &B);
  static ZoneDomain join(ZoneDomain &A, ZoneDomain &B);
  static ZoneDomain widen(const ZoneDomain &Old, ZoneDomain &New);
  static ZoneDomain narrow(ZoneDomain &Old, const ZoneDomain &New);
  static ZoneDomain widenWithThresholds(const ZoneDomain &Old,
                                        ZoneDomain &New,
                                        const std::vector<double> &Thresholds);

  bool leq(ZoneDomain &Other);
  bool equals(ZoneDomain &Other);

  /// Octagonal constraints: differences and unary bounds are exact;
  /// sums (v_i + v_j <= c) are absorbed through the partner's bound
  /// like the interval domain does (sound).
  void addConstraint(const OctCons &C);
  void addConstraints(const std::vector<OctCons> &Cs);
  void assign(unsigned X, const LinExpr &E);
  void havoc(unsigned X);

  Interval bounds(unsigned V);
  Interval evalInterval(const LinExpr &E);

  /// DBM-entry-scaled bound for an octagonal constraint (2x for unary),
  /// interface-compatible with Octagon::boundOf; sums are answered at
  /// interval precision.
  double boundOf(const OctCons &C);

  void addVars(unsigned Count);
  void removeTrailingVars(unsigned Count);

  std::string str(const std::vector<std::string> *Names = nullptr);

private:
  unsigned dim() const { return N + 1; }
  double &at(unsigned I, unsigned J) {
    return M[static_cast<std::size_t>(I) * dim() + J];
  }
  double at(unsigned I, unsigned J) const {
    return M[static_cast<std::size_t>(I) * dim() + J];
  }
  void markEmpty() {
    Empty = true;
    Closed = true;
  }
  /// Tightens entry (I, J) to \p Bound.
  void tighten(unsigned I, unsigned J, double Bound) {
    if (Bound < at(I, J)) {
      at(I, J) = Bound;
      Closed = false;
    }
  }
  void forgetRow(unsigned X); ///< clears var X's row/column (index X+1)

  unsigned N;
  AlignedBuffer<double> M; ///< (n+1)^2 row-major full DBM
  bool Closed = true;
  bool Empty = false;
};

} // namespace optoct::zone

#endif // OPTOCT_ZONE_ZONE_DOMAIN_H
