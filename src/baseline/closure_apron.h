//===- baseline/closure_apron.h - APRON's closure algorithm -----*- C++ -*-===//
///
/// \file
/// The state-of-the-art closure the paper compares against (Section 5.1,
/// Algorithm 2): APRON's shortest-path closure on the half
/// representation. Because the full DBM is asymmetric, an entry of the
/// upper triangle accessed through coherence may not yet be updated in
/// iteration k; APRON compensates by performing two min operations per
/// iteration of the outermost loop, which runs over all 2n extended
/// indices — 16n^3 + 22n^2 + 6n operations in total.
///
/// The implementation is deliberately scalar and accesses the coherent
/// mirror entries column-wise, reproducing the locality behavior of the
/// reference library.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_BASELINE_CLOSURE_APRON_H
#define OPTOCT_BASELINE_CLOSURE_APRON_H

#include "oct/dbm.h"

#include <vector>

namespace optoct::baseline {

/// Closure engine selection for the baseline library. VectorizedFW is
/// the Fig. 6(a) comparison point: Algorithm 1 on the full DBM with
/// processor-specific optimizations but without the operation-count
/// reduction (conversion between the half and full representation is
/// included in its cost).
enum class BaselineClosureMode { Apron, VectorizedFW };

/// Sets / reads the closure engine used by ApronOctagon::close().
void setBaselineClosureMode(BaselineClosureMode Mode);
BaselineClosureMode baselineClosureMode();

/// APRON strong closure (Algorithm 2 + strengthening). Returns false if
/// the octagon is empty; otherwise leaves a strongly closed matrix with
/// a zero diagonal.
bool closureApron(HalfDbm &M);

/// The Fig. 6(a) "FW" closure: vectorized Algorithm 1 via the full-DBM
/// representation.
bool closureVectorizedFW(HalfDbm &M);

/// APRON-style incremental strong closure for a matrix closed before
/// the rows/columns of \p Touched were tightened (scalar).
bool incrementalClosureApron(HalfDbm &M, const std::vector<unsigned> &Touched);

} // namespace optoct::baseline

#endif // OPTOCT_BASELINE_CLOSURE_APRON_H
