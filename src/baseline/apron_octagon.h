//===- baseline/apron_octagon.h - Reference octagon domain ------*- C++ -*-===//
///
/// \file
/// The baseline octagon implementation standing in for APRON in every
/// experiment: a dense half DBM with Algorithm 2 closure, no sparsity
/// or decomposition tracking, and scalar operators. Its interface
/// mirrors optoct::Octagon so the analyzer can be instantiated with
/// either library — the paper's "keep the APRON API, replace the
/// implementation" methodology in reverse.
///
//===----------------------------------------------------------------------===//

#ifndef OPTOCT_BASELINE_APRON_OCTAGON_H
#define OPTOCT_BASELINE_APRON_OCTAGON_H

#include "oct/constraint.h"
#include "oct/dbm.h"
#include "support/stats.h"

#include <string>
#include <vector>

namespace optoct::baseline {

/// Statistics sink for the baseline library's closures (mirrors
/// setOctStatsSink).
void setApronStatsSink(OctStats *Sink);

/// A dense octagon element in the style of the original APRON octagon
/// domain.
class ApronOctagon {
public:
  /// Constructs the top element.
  explicit ApronOctagon(unsigned NumVars);

  static ApronOctagon makeTop(unsigned NumVars) {
    return ApronOctagon(NumVars);
  }
  static ApronOctagon makeBottom(unsigned NumVars);

  unsigned numVars() const { return M.numVars(); }
  bool isClosed() const { return Closed; }
  bool isBottom();
  bool isTop() const;

  double entry(unsigned I, unsigned J) const { return M.get(I, J); }
  double boundOf(const OctCons &C) const {
    OctCons::Entry E = C.toEntry();
    return entry(E.Row, E.Col);
  }

  /// Strong closure (Algorithm 2); cached via the Closed flag.
  void close();

  static ApronOctagon meet(const ApronOctagon &A, const ApronOctagon &B);
  static ApronOctagon join(ApronOctagon &A, ApronOctagon &B);
  static ApronOctagon widen(const ApronOctagon &Old, ApronOctagon &New);
  static ApronOctagon narrow(ApronOctagon &Old, const ApronOctagon &New);
  /// Widening with thresholds (variable-level values; unary entries use
  /// their doubles), mirroring Octagon::widenWithThresholds.
  static ApronOctagon
  widenWithThresholds(const ApronOctagon &Old, ApronOctagon &New,
                      const std::vector<double> &Thresholds);

  bool leq(ApronOctagon &Other);
  bool equals(ApronOctagon &Other);

  void addConstraint(const OctCons &C);
  void addConstraints(const std::vector<OctCons> &Cs);
  void assign(unsigned X, const LinExpr &E);
  void havoc(unsigned X);

  Interval bounds(unsigned V);
  Interval evalInterval(const LinExpr &E);
  std::vector<OctCons> constraints();

  void addVars(unsigned Count);
  void removeTrailingVars(unsigned Count);

  std::string str(const std::vector<std::string> *Names = nullptr);

private:
  void markEmpty() {
    Empty = true;
    Closed = true;
  }
  void forgetVar(unsigned X);
  void shiftVar(unsigned X, double C);
  void negateShiftVar(unsigned X, double C);
  void incrementalClose(const std::vector<unsigned> &Touched);

  HalfDbm M;
  bool Closed = true;
  bool Empty = false;
};

} // namespace optoct::baseline

#endif // OPTOCT_BASELINE_APRON_OCTAGON_H
