//===- baseline/closure_apron.cpp - APRON's closure algorithm ------------===//

#include "baseline/closure_apron.h"

#include "oct/closure_reference.h"

using namespace optoct;
using namespace optoct::baseline;

// Per-thread so a parallel harness can run Apron and VectorizedFW jobs
// concurrently without the modes racing.
static thread_local BaselineClosureMode ClosureMode = BaselineClosureMode::Apron;

void optoct::baseline::setBaselineClosureMode(BaselineClosureMode Mode) {
  ClosureMode = Mode;
}
BaselineClosureMode optoct::baseline::baselineClosureMode() {
  return ClosureMode;
}

bool optoct::baseline::closureVectorizedFW(HalfDbm &M) {
  FullDbm Full(M);
  if (!closureFullVectorized(Full))
    return false;
  Full.toHalf(M);
  return true;
}

namespace {

/// Strengthening + emptiness check + diagonal normalization shared by
/// the full and incremental closures.
bool strengthenAndCheck(HalfDbm &M) {
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I) {
    double Di = M.get(I, I ^ 1u);
    double *Row = M.row(I);
    for (unsigned J = 0; J <= (I | 1u); ++J) {
      double S = (Di + M.get(J ^ 1u, J)) * 0.5;
      if (S < Row[J])
        Row[J] = S;
    }
  }
  for (unsigned I = 0; I != D; ++I)
    if (M.at(I, I) < 0.0)
      return false;
  for (unsigned I = 0; I != D; ++I)
    M.at(I, I) = 0.0;
  return true;
}

/// One iteration of Algorithm 2's outermost loop for extended index K:
/// two min operations per entry, with the coherent mirror access pattern
/// of the original library.
void apronIteration(HalfDbm &M, unsigned K) {
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I) {
    double Ik = M.get(I, K);
    double Ik1 = M.get(I, K ^ 1u);
    double *Row = M.row(I);
    for (unsigned J = 0; J <= (I | 1u); ++J) {
      double T1 = Ik + M.get(K, J);
      if (T1 < Row[J])
        Row[J] = T1;
      double T2 = Ik1 + M.get(K ^ 1u, J);
      if (T2 < Row[J])
        Row[J] = T2;
    }
  }
}

} // namespace

bool optoct::baseline::closureApron(HalfDbm &M) {
  unsigned D = M.dim();
  for (unsigned K = 0; K != D; ++K)
    apronIteration(M, K);
  return strengthenAndCheck(M);
}

bool optoct::baseline::incrementalClosureApron(
    HalfDbm &M, const std::vector<unsigned> &Touched) {
  for (unsigned V : Touched) {
    apronIteration(M, 2 * V);
    apronIteration(M, 2 * V + 1);
  }
  return strengthenAndCheck(M);
}
