//===- baseline/apron_octagon.cpp - Reference octagon domain -------------===//

#include "baseline/apron_octagon.h"

#include "baseline/closure_apron.h"
#include "support/timing.h"

#include <algorithm>
#include <cstdio>

using namespace optoct;
using namespace optoct::baseline;

// Per-thread, mirroring setOctStatsSink: concurrent analyses each get
// their own sink.
static thread_local OctStats *ApronStats = nullptr;

void optoct::baseline::setApronStatsSink(OctStats *Sink) {
  ApronStats = Sink;
}

ApronOctagon::ApronOctagon(unsigned NumVars) : M(NumVars) { M.initTop(); }

ApronOctagon ApronOctagon::makeBottom(unsigned NumVars) {
  ApronOctagon O(NumVars);
  O.markEmpty();
  return O;
}

bool ApronOctagon::isBottom() {
  close();
  return Empty;
}

bool ApronOctagon::isTop() const {
  if (Empty)
    return false;
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      if (I != J && isFinite(M.at(I, J)))
        return false;
  return true;
}

void ApronOctagon::close() {
  if (Closed || Empty)
    return;
  std::uint64_t Begin = ApronStats ? readCycles() : 0;
  bool Feasible = baselineClosureMode() == BaselineClosureMode::Apron
                      ? closureApron(M)
                      : closureVectorizedFW(M);
  if (!Feasible)
    markEmpty();
  Closed = true;
  if (ApronStats)
    ApronStats->recordClosure(readCycles() - Begin, numVars(), /*KindTag=*/0);
}

void ApronOctagon::incrementalClose(const std::vector<unsigned> &Touched) {
  if (Empty)
    return;
  if (!incrementalClosureApron(M, Touched))
    markEmpty();
  Closed = true;
}

ApronOctagon ApronOctagon::meet(const ApronOctagon &A, const ApronOctagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  if (A.Empty || B.Empty)
    return makeBottom(A.numVars());
  ApronOctagon R(A.numVars());
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I)
    R.M.data()[I] = std::min(A.M.data()[I], B.M.data()[I]);
  R.Closed = false;
  return R;
}

ApronOctagon ApronOctagon::join(ApronOctagon &A, ApronOctagon &B) {
  assert(A.numVars() == B.numVars() && "dimension mismatch");
  A.close();
  B.close();
  if (A.Empty)
    return B;
  if (B.Empty)
    return A;
  ApronOctagon R(A.numVars());
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I)
    R.M.data()[I] = std::max(A.M.data()[I], B.M.data()[I]);
  R.Closed = true; // max of strongly closed matrices is strongly closed
  return R;
}

ApronOctagon ApronOctagon::widen(const ApronOctagon &Old, ApronOctagon &New) {
  static const std::vector<double> NoThresholds;
  return widenWithThresholds(Old, New, NoThresholds);
}

ApronOctagon
ApronOctagon::widenWithThresholds(const ApronOctagon &Old, ApronOctagon &New,
                                  const std::vector<double> &Thresholds) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  New.close();
  if (Old.Empty)
    return New;
  if (New.Empty)
    return Old;
  // Unary DBM entries (2x the variable bound) land on 2t, binary on t.
  std::vector<double> Doubled;
  Doubled.reserve(Thresholds.size());
  for (double T : Thresholds)
    Doubled.push_back(2 * T);
  ApronOctagon R(Old.numVars());
  unsigned D = R.M.dim();
  for (unsigned I = 0; I != D; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J) {
      double VO = Old.M.at(I, J);
      double VN = New.M.at(I, J);
      if (VN <= VO) {
        R.M.at(I, J) = VO;
        continue;
      }
      const std::vector<double> &Set = I / 2 == J / 2 ? Doubled : Thresholds;
      auto It = std::lower_bound(Set.begin(), Set.end(), VN);
      R.M.at(I, J) = It == Set.end() ? Infinity : *It;
    }
  R.Closed = false;
  return R;
}

ApronOctagon ApronOctagon::narrow(ApronOctagon &Old, const ApronOctagon &New) {
  assert(Old.numVars() == New.numVars() && "dimension mismatch");
  Old.close();
  if (Old.Empty || New.Empty)
    return makeBottom(Old.numVars());
  ApronOctagon R(Old.numVars());
  for (std::size_t I = 0, E = R.M.size(); I != E; ++I) {
    double VO = Old.M.data()[I];
    R.M.data()[I] = isFinite(VO) ? VO : New.M.data()[I];
  }
  R.Closed = false;
  return R;
}

bool ApronOctagon::leq(ApronOctagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  if (Empty)
    return true;
  if (Other.Empty)
    return false;
  for (std::size_t I = 0, E = M.size(); I != E; ++I)
    if (M.data()[I] > Other.M.data()[I])
      return false;
  return true;
}

bool ApronOctagon::equals(ApronOctagon &Other) {
  assert(numVars() == Other.numVars() && "dimension mismatch");
  close();
  Other.close();
  if (Empty || Other.Empty)
    return Empty == Other.Empty;
  for (std::size_t I = 0, E = M.size(); I != E; ++I)
    if (M.data()[I] != Other.M.data()[I])
      return false;
  return true;
}

void ApronOctagon::addConstraint(const OctCons &C) { addConstraints({C}); }

void ApronOctagon::addConstraints(const std::vector<OctCons> &Cs) {
  if (Empty || Cs.empty())
    return;
  bool Changed = false;
  for (const OctCons &C : Cs) {
    OctCons::Entry E = C.toEntry();
    double Old = M.get(E.Row, E.Col);
    if (E.Bound < Old) {
      M.set(E.Row, E.Col, E.Bound);
      Changed = true;
    }
  }
  if (!Changed)
    return;
  // Left unclosed, as in APRON: the next operator triggers full closure.
  Closed = false;
}

void ApronOctagon::forgetVar(unsigned X) {
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I) {
    if (I == 2 * X || I == 2 * X + 1)
      continue;
    M.set(I, 2 * X, Infinity);
    M.set(I, 2 * X + 1, Infinity);
  }
  M.at(2 * X, 2 * X + 1) = Infinity;
  M.at(2 * X + 1, 2 * X) = Infinity;
}

void ApronOctagon::shiftVar(unsigned X, double C) {
  if (Empty)
    return;
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I) {
    if (I == 2 * X || I == 2 * X + 1)
      continue;
    M.set(I, 2 * X, M.get(I, 2 * X) + C);
    M.set(I, 2 * X + 1, M.get(I, 2 * X + 1) - C);
  }
  M.at(2 * X + 1, 2 * X) += 2 * C;
  M.at(2 * X, 2 * X + 1) -= 2 * C;
}

void ApronOctagon::negateShiftVar(unsigned X, double C) {
  if (Empty)
    return;
  unsigned D = M.dim();
  for (unsigned I = 0; I != D; ++I) {
    if (I == 2 * X || I == 2 * X + 1)
      continue;
    double Pos = M.get(I, 2 * X);
    double Neg = M.get(I, 2 * X + 1);
    M.set(I, 2 * X, Neg + C);
    M.set(I, 2 * X + 1, Pos - C);
  }
  double Up = M.at(2 * X + 1, 2 * X);
  double Lo = M.at(2 * X, 2 * X + 1);
  M.at(2 * X + 1, 2 * X) = Lo + 2 * C;
  M.at(2 * X, 2 * X + 1) = Up - 2 * C;
}

void ApronOctagon::assign(unsigned X, const LinExpr &E) {
  if (Empty)
    return;
  if (const auto *Term = E.octagonalTerm()) {
    int A = Term->first;
    unsigned Y = Term->second;
    if (Y == X) {
      if (A == 1)
        shiftVar(X, E.Const);
      else
        negateShiftVar(X, E.Const);
      return;
    }
    close();
    if (Empty)
      return;
    forgetVar(X);
    if (A == 1) {
      M.set(2 * Y, 2 * X, E.Const);
      M.set(2 * X, 2 * Y, -E.Const);
    } else {
      M.set(2 * Y + 1, 2 * X, E.Const);
      M.set(2 * Y, 2 * X + 1, -E.Const);
    }
    Closed = false;
    // The new arcs live in the bands of both x and y.
    incrementalClose({X, Y});
    return;
  }
  if (E.Terms.empty()) {
    close();
    if (Empty)
      return;
    forgetVar(X);
    M.at(2 * X + 1, 2 * X) = 2 * E.Const;
    M.at(2 * X, 2 * X + 1) = -2 * E.Const;
    Closed = false;
    incrementalClose({X});
    return;
  }
  Interval Iv = evalInterval(E);
  close();
  if (Empty)
    return;
  forgetVar(X);
  if (Iv.isBottom()) {
    markEmpty();
    return;
  }
  if (isFinite(Iv.Hi))
    M.at(2 * X + 1, 2 * X) = 2 * Iv.Hi;
  if (Iv.Lo != -Infinity)
    M.at(2 * X, 2 * X + 1) = -2 * Iv.Lo;
  Closed = false;
  incrementalClose({X});
}

void ApronOctagon::havoc(unsigned X) {
  if (Empty)
    return;
  close();
  if (Empty)
    return;
  forgetVar(X);
}

Interval ApronOctagon::bounds(unsigned V) {
  close();
  if (Empty)
    return {Infinity, -Infinity};
  Interval Iv;
  double Up = M.at(2 * V + 1, 2 * V);
  double Lo = M.at(2 * V, 2 * V + 1);
  if (isFinite(Up))
    Iv.Hi = Up / 2;
  if (isFinite(Lo))
    Iv.Lo = -Lo / 2;
  return Iv;
}

Interval ApronOctagon::evalInterval(const LinExpr &E) {
  close();
  if (Empty)
    return {Infinity, -Infinity};
  double Lo = E.Const, Hi = E.Const;
  for (const auto &[Coef, Var] : E.Terms) {
    if (Coef == 0)
      continue;
    Interval B = bounds(Var);
    double C = static_cast<double>(Coef);
    if (Coef > 0) {
      Lo += C * B.Lo;
      Hi += C * B.Hi;
    } else {
      Lo += C * B.Hi;
      Hi += C * B.Lo;
    }
  }
  return {Lo, Hi};
}

std::vector<OctCons> ApronOctagon::constraints() {
  close();
  std::vector<OctCons> Out;
  if (Empty)
    return Out;
  unsigned N = numVars();
  for (unsigned VA = 0; VA != N; ++VA)
    for (unsigned VB = 0; VB <= VA; ++VB)
      for (unsigned R = 0; R != 2; ++R)
        for (unsigned S = 0; S != 2; ++S) {
          unsigned I = 2 * VA + R, J = 2 * VB + S;
          if (I == J)
            continue;
          double Bound = M.at(I, J);
          if (!isFinite(Bound))
            continue;
          if (VA == VB) {
            if (R == 1)
              Out.push_back(OctCons::upper(VA, Bound / 2));
            else
              Out.push_back(OctCons::lower(VA, Bound / 2));
            continue;
          }
          int CoefB = S == 0 ? +1 : -1;
          int CoefA = R == 0 ? -1 : +1;
          Out.push_back({CoefB, VB, CoefA, VA, Bound});
        }
  return Out;
}

void ApronOctagon::addVars(unsigned Count) {
  if (Count == 0)
    return;
  unsigned OldN = numVars(), NewN = OldN + Count;
  HalfDbm NewM(NewN);
  NewM.initTop();
  for (unsigned I = 0; I != 2 * OldN; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      NewM.at(I, J) = M.at(I, J);
  M = std::move(NewM);
}

void ApronOctagon::removeTrailingVars(unsigned Count) {
  if (Count == 0)
    return;
  unsigned NewN = numVars() - Count;
  if (!Empty)
    close();
  HalfDbm NewM(NewN);
  if (Empty) {
    NewM.initTop();
    M = std::move(NewM);
    return;
  }
  for (unsigned I = 0; I != 2 * NewN; ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      NewM.at(I, J) = M.at(I, J);
  M = std::move(NewM);
}

std::string ApronOctagon::str(const std::vector<std::string> *Names) {
  if (Empty)
    return "bottom";
  auto Name = [&](unsigned V) {
    if (Names && V < Names->size())
      return (*Names)[V];
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "v%u", V);
    return std::string(Buf);
  };
  std::vector<OctCons> Cs = constraints();
  if (Cs.empty())
    return "top";
  std::string Out;
  for (const OctCons &C : Cs) {
    if (!Out.empty())
      Out += " && ";
    char Buf[64];
    if (C.isUnary())
      std::snprintf(Buf, sizeof(Buf), "%s%s <= %g", C.CoefI < 0 ? "-" : "",
                    Name(C.I).c_str(), C.Bound);
    else
      std::snprintf(Buf, sizeof(Buf), "%s%s %c %s <= %g",
                    C.CoefI < 0 ? "-" : "", Name(C.I).c_str(),
                    C.CoefJ < 0 ? '-' : '+', Name(C.J).c_str(), C.Bound);
    Out += Buf;
  }
  return Out;
}
