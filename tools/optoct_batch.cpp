//===- tools/optoct_batch.cpp - Parallel batch analyzer -------------------===//
///
/// \file
/// Batch front end over the parallel runtime: analyze many mini-IMP
/// programs at once, sharded across a worker pool, and report per-job
/// verdicts plus aggregate statistics.
///
///   optoct_batch [options] file1.imp file2.imp ...
///     --jobs=N | --jobs N   worker threads (default 1; 0 = one per
///                           hardware thread)
///     --generated           add the 17 generated paper workloads to
///                           the job set
///     --json=<path>         write the machine-readable report
///     --invariants          print loop-head invariants per job
///     --widening-delay=<k>, --narrowing=<k>, --no-linearize,
///     --thresholds=a,b,...  engine options (as in optoct)
///
///   Fault tolerance:
///     --deadline-ms=<n>     per-attempt wall-clock budget (0 = off)
///     --max-cells=<n>       per-attempt DBM-cell allocation budget
///     --retries=<n>         retry failed jobs up to n times (backoff)
///     --backoff-ms=<n>      base backoff before the first retry
///     --inject=<spec>       seeded fault injection (repeatable);
///                           spec: site=<s>,kind=<alloc|slow|timeout|
///                           poison|crash|segv|oom|hang>[,job=<substr>]
///                           [,hits=<n>][,after=<n>][,ms=<n>][,prob=<p>]
///     --fault-seed=<n>      seed for probabilistic injection rules
///
///   Process isolation (Level 3 of the recovery ladder):
///     --isolate=<mode>      thread (default) or process: fork a pool
///                           of supervised worker processes so a job
///                           that segfaults, gets OOM-killed, or hangs
///                           without polling is contained (CRASHED /
///                           TIMEOUT), never the batch
///     --max-rss-mb=<n>      per-worker RLIMIT_AS in MiB (process mode;
///                           0 = unlimited; ignored under sanitizers)
///     --recycle-after=<n>   retire and respawn each worker after n
///                           jobs (process mode; 0 = never)
///
///   Recovery ladder (see README / EXPERIMENTS):
///     --audit               Level 1: validate closure results and
///                           recover via the reference closure
///     --audit-rate=<p>      fraction of closures cross-checked against
///                           the reference (default 0.05)
///     --audit-triples=<n>   closedness spot-check triples per closure
///     --audit-seed=<n>      sampling seed for the audit decisions
///     --journal=<path>      Level 2: fsync a checkpoint record per
///                           completed job to an append-only journal
///     --resume              load the journal and run only missing jobs
///     --canonical-json      omit timing fields from --json so reruns
///                           and resumed runs compare byte-identical
///
///   Sharded multi-node tier (Level 4 of the recovery ladder):
///     --nodes=N             shard the batch across N worker-node
///                           processes under a lease-based coordinator;
///                           killing any node mid-run re-leases its
///                           shards and the merged report stays
///                           byte-identical (canonical JSON) to the
///                           single-node run. With --journal=<prefix>
///                           the per-node journals land at
///                           <prefix>.node<k> and --resume recovers
///                           even from a SIGKILLed coordinator.
///     --lease-ms=<n>        lease duration; renewed by each per-job
///                           heartbeat, so it must exceed the longest
///                           single job (default 10000)
///     --shard-size=<n>      jobs per lease (0 = auto)
///     --max-releases=<n>    times a job may take its node down before
///                           it is declared lost (default 5)
///     --no-steal            disable work stealing from busy nodes
///
/// Exit code: 0 if every job analyzed and all assertions were proven,
/// 1 if some assertion is unknown or a job failed/degraded/timed out,
/// 2 on usage errors or internal failures, 3 if any job CRASHED (its
/// worker process died — process/shard mode only), 4 on unrecoverable
/// shard loss (a job with no genuine result after exhausting its
/// release cap — shard mode only). See README "Exit codes".
///
//===----------------------------------------------------------------------===//

#include "oct/simd_dispatch.h"
#include "runtime/batch.h"
#include "runtime/journal.h"
#include "runtime/shard.h"
#include "runtime/thread_pool.h"
#include "support/faultinject.h"
#include "workloads/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

using namespace optoct;

namespace {

struct BatchCliOptions {
  runtime::BatchOptions Batch;
  runtime::ShardOptions Shard;
  bool UseShard = false; ///< --nodes given: run the Level 4 coordinator.
  std::vector<std::string> Files;
  bool AddGenerated = false;
  bool PrintInvariants = false;
  std::string JsonPath;
  bool CanonicalJson = false;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs=N] [--generated] [--json=<path>]\n"
               "       [--invariants] [--widening-delay=<k>] "
               "[--narrowing=<k>]\n"
               "       [--no-linearize] [--thresholds=a,b,...]\n"
               "       [--deadline-ms=<n>] [--max-cells=<n>] "
               "[--retries=<n>]\n"
               "       [--backoff-ms=<n>] [--inject=<spec>] "
               "[--fault-seed=<n>]\n"
               "       [--audit] [--audit-rate=<p>] [--audit-triples=<n>] "
               "[--audit-seed=<n>]\n"
               "       [--isolate=thread|process] [--max-rss-mb=<n>] "
               "[--recycle-after=<n>]\n"
               "       [--journal=<path>] [--resume] [--canonical-json]\n"
               "       [--nodes=N] [--lease-ms=<n>] [--shard-size=<n>]\n"
               "       [--max-releases=<n>] [--no-steal]\n"
               "       [files.imp...]\n",
               Argv0);
}

/// stoul/stod throw on garbage ("--jobs=x") and out-of-range values;
/// a CLI must diagnose, not terminate.
bool parseU64(const std::string &Val, const char *Flag, std::uint64_t &Out) {
  try {
    std::size_t End = 0;
    Out = std::stoull(Val, &End);
    if (End == Val.size())
      return true;
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
               Flag, Val.c_str());
  return false;
}

bool parseUnsigned(const std::string &Val, const char *Flag, unsigned &Out) {
  std::uint64_t Wide;
  if (!parseU64(Val, Flag, Wide) || Wide > 0xffffffffull) {
    Out = 0;
    return false;
  }
  Out = static_cast<unsigned>(Wide);
  return true;
}

bool parseDouble(const std::string &Val, const char *Flag, double &Out) {
  try {
    std::size_t End = 0;
    Out = std::stod(Val, &End);
    if (End == Val.size())
      return true;
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag,
               Val.c_str());
  return false;
}

bool parseArgs(int Argc, char **Argv, BatchCliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--jobs=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(7), "--jobs", Opts.Batch.Jobs))
        return false;
    } else if (Arg == "--jobs" && I + 1 != Argc) {
      if (!parseUnsigned(Argv[++I], "--jobs", Opts.Batch.Jobs))
        return false;
    } else if (Arg == "--generated")
      Opts.AddGenerated = true;
    else if (Arg == "--invariants")
      Opts.PrintInvariants = true;
    else if (Arg.rfind("--json=", 0) == 0)
      Opts.JsonPath = Arg.substr(7);
    else if (Arg == "--json" && I + 1 != Argc)
      Opts.JsonPath = Argv[++I];
    else if (Arg.rfind("--widening-delay=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--widening-delay",
                         Opts.Batch.Engine.WideningDelay))
        return false;
    } else if (Arg.rfind("--narrowing=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(12), "--narrowing",
                         Opts.Batch.Engine.NarrowingPasses))
        return false;
    } else if (Arg == "--no-linearize")
      Opts.Batch.Engine.LinearizeGuards = false;
    else if (Arg.rfind("--thresholds=", 0) == 0) {
      std::stringstream List(Arg.substr(13));
      std::string Item;
      while (std::getline(List, Item, ',')) {
        double T;
        if (!parseDouble(Item, "--thresholds", T))
          return false;
        Opts.Batch.Engine.WideningThresholds.push_back(T);
      }
      std::sort(Opts.Batch.Engine.WideningThresholds.begin(),
                Opts.Batch.Engine.WideningThresholds.end());
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(14), "--deadline-ms",
                    Opts.Batch.Budget.DeadlineMs))
        return false;
    } else if (Arg.rfind("--max-cells=", 0) == 0) {
      if (!parseU64(Arg.substr(12), "--max-cells",
                    Opts.Batch.Budget.MaxDbmCells))
        return false;
    } else if (Arg.rfind("--retries=", 0) == 0) {
      unsigned Retries;
      if (!parseUnsigned(Arg.substr(10), "--retries", Retries))
        return false;
      Opts.Batch.MaxAttempts = Retries + 1;
    } else if (Arg.rfind("--backoff-ms=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(13), "--backoff-ms",
                         Opts.Batch.BackoffBaseMs))
        return false;
    } else if (Arg.rfind("--inject=", 0) == 0) {
      std::string Error;
      if (!support::FaultPlan::global().parseRule(Arg.substr(9), Error)) {
        std::fprintf(stderr, "error: --inject: %s\n", Error.c_str());
        return false;
      }
    } else if (Arg.rfind("--fault-seed=", 0) == 0) {
      std::uint64_t Seed;
      if (!parseU64(Arg.substr(13), "--fault-seed", Seed))
        return false;
      support::FaultPlan::global().setSeed(Seed);
    } else if (Arg == "--audit")
      Opts.Batch.Audit.Enabled = true;
    else if (Arg.rfind("--audit-rate=", 0) == 0) {
      if (!parseDouble(Arg.substr(13), "--audit-rate",
                       Opts.Batch.Audit.CrossCheckRate))
        return false;
      Opts.Batch.Audit.Enabled = true;
    } else if (Arg.rfind("--audit-triples=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), "--audit-triples",
                         Opts.Batch.Audit.SpotCheckTriples))
        return false;
      Opts.Batch.Audit.Enabled = true;
    } else if (Arg.rfind("--audit-seed=", 0) == 0) {
      if (!parseU64(Arg.substr(13), "--audit-seed", Opts.Batch.Audit.Seed))
        return false;
      Opts.Batch.Audit.Enabled = true;
    } else if (Arg.rfind("--isolate=", 0) == 0) {
      std::string Mode = Arg.substr(10);
      if (Mode == "thread")
        Opts.Batch.Isolation = runtime::IsolationMode::Thread;
      else if (Mode == "process")
        Opts.Batch.Isolation = runtime::IsolationMode::Process;
      else {
        std::fprintf(stderr,
                     "error: --isolate expects 'thread' or 'process', "
                     "got '%s'\n",
                     Mode.c_str());
        return false;
      }
    } else if (Arg.rfind("--max-rss-mb=", 0) == 0) {
      if (!parseU64(Arg.substr(13), "--max-rss-mb", Opts.Batch.MaxRssMb))
        return false;
    } else if (Arg.rfind("--recycle-after=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), "--recycle-after",
                         Opts.Batch.RecycleAfter))
        return false;
    } else if (Arg.rfind("--journal=", 0) == 0)
      Opts.Batch.JournalPath = Arg.substr(10);
    else if (Arg == "--resume")
      Opts.Batch.Resume = true;
    else if (Arg.rfind("--nodes=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(8), "--nodes", Opts.Shard.Nodes))
        return false;
      if (Opts.Shard.Nodes == 0) {
        std::fprintf(stderr, "error: --nodes expects at least 1\n");
        return false;
      }
      Opts.UseShard = true;
    } else if (Arg.rfind("--lease-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(11), "--lease-ms", Opts.Shard.LeaseMs))
        return false;
    } else if (Arg.rfind("--shard-size=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(13), "--shard-size",
                         Opts.Shard.ShardSize))
        return false;
    } else if (Arg.rfind("--max-releases=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(15), "--max-releases",
                         Opts.Shard.MaxJobReleases))
        return false;
    } else if (Arg == "--no-steal")
      Opts.Shard.WorkSteal = false;
    else if (Arg == "--canonical-json")
      Opts.CanonicalJson = true;
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else
      Opts.Files.push_back(Arg);
  }
  if (Opts.Files.empty() && !Opts.AddGenerated) {
    std::fprintf(stderr, "error: no input files (and no --generated)\n");
    return false;
  }
  if (Opts.Batch.Resume && Opts.Batch.JournalPath.empty()) {
    std::fprintf(stderr, "error: --resume requires --journal=<path>\n");
    return false;
  }
  if (Opts.UseShard &&
      Opts.Batch.Isolation == runtime::IsolationMode::Process) {
    std::fprintf(stderr,
                 "error: --nodes already isolates jobs in node processes; "
                 "it does not combine with --isolate=process\n");
    return false;
  }
  return true;
}

int run(int Argc, char **Argv) {
  BatchCliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }

  std::vector<runtime::BatchJob> Jobs;
  for (const std::string &File : Opts.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Jobs.push_back({File, Buffer.str()});
  }
  if (Opts.AddGenerated)
    for (const workloads::WorkloadSpec &Spec : workloads::paperBenchmarks())
      Jobs.push_back({Spec.Name, workloads::generateProgram(Spec)});

  runtime::BatchReport Report;
  if (Opts.UseShard) {
    // Level 4: --journal names the per-node journal *prefix* and
    // --resume recovers from whatever journals survive (including after
    // a SIGKILLed coordinator). The coordinator owns journaling, so the
    // single-node journal knobs are handed over rather than applied.
    Opts.Shard.JournalPrefix = Opts.Batch.JournalPath;
    Opts.Shard.Resume = Opts.Batch.Resume;
    Opts.Batch.JournalPath.clear();
    Opts.Batch.Resume = false;
    Report = runtime::runShardedBatch(Jobs, Opts.Batch, Opts.Shard);
  } else {
    Report = runtime::runBatch(Jobs, Opts.Batch);
  }

  bool AllProven = true;
  for (const runtime::JobResult &R : Report.Results) {
    if (!R.Ok) {
      const char *Label = R.Status == runtime::JobStatus::Timeout ? "TIMEOUT"
                          : R.Status == runtime::JobStatus::Crashed
                              ? "CRASHED"
                              : "FAILED";
      std::printf("%-24s %s: %s%s\n", R.Name.c_str(), Label,
                  R.Error.c_str(),
                  R.Attempts > 1
                      ? (" (after " + std::to_string(R.Attempts) +
                         " attempts)")
                            .c_str()
                      : "");
      AllProven = false;
      continue;
    }
    std::printf("%-24s %u/%u proven, %llu closures, %.1f ms", R.Name.c_str(),
                R.AssertsProven, R.AssertsTotal,
                static_cast<unsigned long long>(R.NumClosures),
                R.WallSeconds * 1e3);
    if (R.Status != runtime::JobStatus::Ok) {
      std::printf(" [%s: %s]", runtime::jobStatusName(R.Status),
                  R.Detail.c_str());
      AllProven = false;
    }
    if (R.Attempts > 1)
      std::printf(" (attempt %u)", R.Attempts);
    if (R.AuditIncidentCount != 0)
      std::printf(" [audit: %llu incidents recovered]",
                  static_cast<unsigned long long>(R.AuditIncidentCount));
    std::printf("\n");
    if (R.AssertsProven != R.AssertsTotal)
      AllProven = false;
    if (Opts.PrintInvariants)
      for (const std::string &Inv : R.LoopInvariants)
        std::printf("    %s\n", Inv.c_str());
  }
  std::printf("batch: %zu jobs (%u ok", Report.Results.size(), Report.JobsOk);
  if (Report.JobsDegraded)
    std::printf(", %u degraded", Report.JobsDegraded);
  if (Report.JobsTimedOut)
    std::printf(", %u timeout", Report.JobsTimedOut);
  if (Report.JobsFailed)
    std::printf(", %u failed", Report.JobsFailed);
  if (Report.JobsCrashed)
    std::printf(", %u crashed", Report.JobsCrashed);
  if (Report.Retries)
    std::printf(", %u retries", Report.Retries);
  if (Report.JobsResumed)
    std::printf(", %u resumed from journal", Report.JobsResumed);
  if (Report.AuditIncidentTotal)
    std::printf(", %llu audit incidents",
                static_cast<unsigned long long>(Report.AuditIncidentTotal));
  std::printf(") on %u %s in %.1f ms (%.1f jobs/s, simd tier %s), "
              "%u/%u assertions proven\n",
              Report.Workers,
              Opts.UseShard
                  ? (Report.Workers == 1 ? "node" : "nodes")
                  : Opts.Batch.Isolation == runtime::IsolationMode::Process
                        ? (Report.Workers == 1 ? "worker process"
                                               : "worker processes")
                        : (Report.Workers == 1 ? "worker" : "workers"),
              Report.WallSeconds * 1e3, Report.throughput(),
              simdTierName(activeSimdTier()), Report.AssertsProven,
              Report.AssertsTotal);
  if (Report.Supervisor.WorkersSpawned != 0)
    std::printf("supervisor: %u spawned, %u crashed, %u recycled, "
                "%u hard kills\n",
                Report.Supervisor.WorkersSpawned,
                Report.Supervisor.WorkersCrashed,
                Report.Supervisor.WorkersRecycled,
                Report.Supervisor.HardKills);
  if (Report.Shard.Nodes != 0)
    std::printf("coordinator: %u nodes (%u spawned, %u died), %u leases "
                "granted, %u expired, %u jobs re-leased, %u stolen, "
                "%u duplicates discarded, %u lost\n",
                Report.Shard.Nodes, Report.Shard.NodesSpawned,
                Report.Shard.NodesDied, Report.Shard.LeasesGranted,
                Report.Shard.LeasesExpired, Report.Shard.Releases,
                Report.Shard.JobsStolen, Report.Shard.DuplicatesDiscarded,
                Report.Shard.JobsLost);

  if (!Opts.JsonPath.empty()) {
    // Atomic write: a crash (or the CI kill-and-resume smoke's SIGKILL)
    // during report emission must never leave a truncated report.
    std::string Error;
    if (!runtime::writeFileAtomic(
            Opts.JsonPath, runtime::reportToJson(Report, Opts.CanonicalJson),
            Error)) {
      std::fprintf(stderr, "error: cannot write '%s': %s\n",
                   Opts.JsonPath.c_str(), Error.c_str());
      return 2;
    }
  }
  if (Report.Shard.JobsLost != 0)
    return 4; // unrecoverable shard loss: some job has no genuine result
  if (Report.JobsCrashed != 0)
    return 3; // a worker process died under a job: the loudest failure
  return AllProven && Report.JobsOk == Report.Results.size() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  // Anything escaping here would std::terminate with no diagnostic;
  // a batch driver must fail with one line and a distinct exit code.
  try {
    return run(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "optoct_batch: fatal: %s\n", E.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "optoct_batch: fatal: unknown error\n");
    return 2;
  }
}
