//===- tools/optoct_batch.cpp - Parallel batch analyzer -------------------===//
///
/// \file
/// Batch front end over the parallel runtime: analyze many mini-IMP
/// programs at once, sharded across a worker pool, and report per-job
/// verdicts plus aggregate statistics.
///
///   optoct_batch [options] file1.imp file2.imp ...
///     --jobs=N | --jobs N   worker threads (default 1; 0 = one per
///                           hardware thread)
///     --generated           add the 17 generated paper workloads to
///                           the job set
///     --json=<path>         write the machine-readable report
///     --invariants          print loop-head invariants per job
///     --widening-delay=<k>, --narrowing=<k>, --no-linearize,
///     --thresholds=a,b,...  engine options (as in optoct)
///
/// Exit code: 0 if every job analyzed and all assertions were proven,
/// 1 if some assertion is unknown or a job failed, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "runtime/batch.h"
#include "runtime/thread_pool.h"
#include "workloads/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace optoct;

namespace {

struct BatchCliOptions {
  runtime::BatchOptions Batch;
  std::vector<std::string> Files;
  bool AddGenerated = false;
  bool PrintInvariants = false;
  std::string JsonPath;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs=N] [--generated] [--json=<path>]\n"
               "       [--invariants] [--widening-delay=<k>] "
               "[--narrowing=<k>]\n"
               "       [--no-linearize] [--thresholds=a,b,...] "
               "[files.imp...]\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, BatchCliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--jobs=", 0) == 0)
      Opts.Batch.Jobs = static_cast<unsigned>(std::stoul(Arg.substr(7)));
    else if (Arg == "--jobs" && I + 1 != Argc)
      Opts.Batch.Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--generated")
      Opts.AddGenerated = true;
    else if (Arg == "--invariants")
      Opts.PrintInvariants = true;
    else if (Arg.rfind("--json=", 0) == 0)
      Opts.JsonPath = Arg.substr(7);
    else if (Arg == "--json" && I + 1 != Argc)
      Opts.JsonPath = Argv[++I];
    else if (Arg.rfind("--widening-delay=", 0) == 0)
      Opts.Batch.Engine.WideningDelay =
          static_cast<unsigned>(std::stoul(Arg.substr(17)));
    else if (Arg.rfind("--narrowing=", 0) == 0)
      Opts.Batch.Engine.NarrowingPasses =
          static_cast<unsigned>(std::stoul(Arg.substr(12)));
    else if (Arg == "--no-linearize")
      Opts.Batch.Engine.LinearizeGuards = false;
    else if (Arg.rfind("--thresholds=", 0) == 0) {
      std::stringstream List(Arg.substr(13));
      std::string Item;
      while (std::getline(List, Item, ','))
        Opts.Batch.Engine.WideningThresholds.push_back(std::stod(Item));
      std::sort(Opts.Batch.Engine.WideningThresholds.begin(),
                Opts.Batch.Engine.WideningThresholds.end());
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else
      Opts.Files.push_back(Arg);
  }
  if (Opts.Files.empty() && !Opts.AddGenerated) {
    std::fprintf(stderr, "error: no input files (and no --generated)\n");
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  BatchCliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }

  std::vector<runtime::BatchJob> Jobs;
  for (const std::string &File : Opts.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Jobs.push_back({File, Buffer.str()});
  }
  if (Opts.AddGenerated)
    for (const workloads::WorkloadSpec &Spec : workloads::paperBenchmarks())
      Jobs.push_back({Spec.Name, workloads::generateProgram(Spec)});

  runtime::BatchReport Report = runtime::runBatch(Jobs, Opts.Batch);

  bool AllProven = true;
  for (const runtime::JobResult &R : Report.Results) {
    if (!R.Ok) {
      std::printf("%-24s FAILED: %s\n", R.Name.c_str(), R.Error.c_str());
      AllProven = false;
      continue;
    }
    std::printf("%-24s %u/%u proven, %llu closures, %.1f ms\n",
                R.Name.c_str(), R.AssertsProven, R.AssertsTotal,
                static_cast<unsigned long long>(R.NumClosures),
                R.WallSeconds * 1e3);
    if (R.AssertsProven != R.AssertsTotal)
      AllProven = false;
    if (Opts.PrintInvariants)
      for (const std::string &Inv : R.LoopInvariants)
        std::printf("    %s\n", Inv.c_str());
  }
  std::printf("batch: %zu jobs (%u ok) on %u worker%s in %.1f ms "
              "(%.1f jobs/s), %u/%u assertions proven\n",
              Report.Results.size(), Report.JobsOk, Report.Workers,
              Report.Workers == 1 ? "" : "s", Report.WallSeconds * 1e3,
              Report.throughput(), Report.AssertsProven,
              Report.AssertsTotal);

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.JsonPath.c_str());
      return 2;
    }
    Out << runtime::reportToJson(Report);
  }
  return AllProven && Report.JobsOk == Report.Results.size() ? 0 : 1;
}
