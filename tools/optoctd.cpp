//===- tools/optoctd.cpp - Persistent analysis daemon ---------------------===//
///
/// \file
/// The analysis daemon and its command-line client.
///
/// Daemon mode (default): bind a Unix-domain socket and serve analysis
/// requests until SIGTERM/SIGINT, multiplexing them onto supervised
/// fork workers with a content-addressed invariant cache in front
/// (src/server). A request that segfaults its worker is reported as
/// crashed to that one client; everyone else keeps being served.
///
///   optoctd --socket=<path> [options]
///     --tcp=<host:port>   additionally (or, without --socket, only)
///                         listen on TCP — same framed protocol, for
///                         replicas on other hosts; port 0 binds an
///                         ephemeral port, announced on stderr as
///                         "optoctd: tcp port <n>"
///     --workers=N         worker processes (default 1; 0 = one per
///                         hardware thread)
///     --cache-mb=N        invariant-cache budget in MiB (default 64)
///     --cache-file=<path> persist the cache here on shutdown and
///                         reload it on start
///     --deadline-ms=<n>   per-request wall-clock budget; overstaying
///                         workers are hard-killed (0 = off)
///     --max-rss-mb=<n>    per-worker RLIMIT_AS in MiB (0 = unlimited;
///                         ignored under sanitizers)
///     --recycle-after=<n> retire each worker after n requests (0 = never)
///     --retries=<n>       re-run a request on a fresh worker up to n
///                         times if its worker crashes
///     --max-frame-mb=<n>  per-client frame size bound (default 16)
///     --max-clients=<n>   concurrent connection cap (default 64)
///     --max-queue=<n>     pending-request high-water mark; past it
///                         requests are shed with "overloaded"
///                         (default 256)
///     --max-pending=<n>   unanswered requests per client connection
///                         before shedding (default 32)
///     --overload-retry-ms=<n>
///                         base of the backoff hint in overloaded
///                         replies (default 50)
///     --quarantine-after=<n>
///                         worker deaths on one fingerprint before it
///                         is quarantined (default 3; 0 = off)
///     --quarantine-ttl-ms=<n>
///                         quarantine entry lifetime (default 60000)
///     --max-request-ms=<n>
///                         hard per-request ceiling when no
///                         --deadline-ms is set, so a hung worker can
///                         never wedge its waiters (default 300000;
///                         0 = unlimited)
///     --drain-ms=<n>      SIGTERM drain budget for in-flight work
///                         (default 5000)
///     --inject=<spec>, --fault-seed=<n>
///                         seeded fault injection, inherited by workers
///                         (spec as in optoct_batch; the daemon-smoke
///                         CI job injects kind=segv through this)
///
/// Client mode: connect to a running daemon, submit programs, print
/// one line per response plus (with --stats) the daemon's counters.
/// --socket also accepts a "tcp:host:port" endpoint.
///
///   optoctd --client --socket=<path> [files.imp...]
///     --endpoints=<e1,e2,...>
///                         replica mode: a comma-separated endpoint
///                         list (Unix paths and/or tcp:host:port)
///                         behind one ReplicaClient — failover across
///                         replicas, optional hedging, and local
///                         in-process degrade when all are down. Each
///                         response line gains a trailing
///                         path=<primary|failover|hedged|local>
///     --hedge-ms=<n>      replica mode: race the next replica if the
///                         preferred one has not answered in n ms
///     --no-local-fallback replica mode: all-replicas-down is a
///                         transport error instead of local analysis
///     --generated         submit the 17 generated paper workloads
///     --repeat=<n>        submit the whole job list n times (cache
///                         exercise; default 1)
///     --no-cache          ask the daemon to skip cache lookups
///     --stats             print daemon counters after the jobs
///     --invariants        print loop-head invariants per response
///     --retry-attempts=<n>
///                         attempts per request under the client retry
///                         policy — transport errors and "overloaded"
///                         sheds retry with capped exponential backoff
///                         + jitter, honoring the daemon's hint
///                         (default 4; 1 = single-shot)
///     --retry-base-ms=<n> first-retry backoff base (default 25)
///     --widening-delay=<k>, --narrowing=<k>, --no-linearize,
///     --thresholds=a,b,..., --max-cells=<n>
///                         per-request engine options
///
/// Each response line is stable, greppable evidence for the CI smoke:
///   <name> <STATUS> <proven>/<total> cached=<0|1> key=<hex> digest=<hex>
/// where digest is the FNV-64 of the (canonicalized) result record —
/// two passes over the same workload must print identical digests,
/// cached or not. A request still shed after every retry prints
///   <name> OVERLOADED after <n> attempts (retry_ms=<hint>)
///
/// Exit codes: 0 all responses ok and proven, 1 some unproven, failed,
/// or shed, 2 usage/transport errors, 3 some request crashed its worker.
///
//===----------------------------------------------------------------------===//

#include "oct/simd_dispatch.h"
#include "runtime/journal.h"
#include "server/client.h"
#include "server/replica.h"
#include "server/server.h"
#include "support/faultinject.h"
#include "support/fnv.h"
#include "support/textcodec.h"
#include "workloads/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>

using namespace optoct;

namespace {

struct DaemonCliOptions {
  bool ClientMode = false;
  server::ServerOptions Server;

  // Client-mode state.
  std::vector<std::string> Files;
  bool AddGenerated = false;
  unsigned Repeat = 1;
  bool NoCache = false;
  bool PrintStats = false;
  bool PrintInvariants = false;
  analysis::AnalysisOptions Engine;
  std::uint64_t MaxDbmCells = 0;
  server::RetryPolicy Retry;

  // Replica-tier client state (--endpoints).
  std::vector<std::string> Endpoints;
  std::uint64_t HedgeAfterMs = 0;
  bool LocalFallback = true;
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket=<path>] [--tcp=<host:port>] [--workers=N]\n"
      "       [--cache-mb=N] [--cache-file=<path>] [--deadline-ms=<n>]\n"
      "       [--max-rss-mb=<n>] [--recycle-after=<n>] [--retries=<n>]\n"
      "       [--max-frame-mb=<n>] [--max-clients=<n>] [--max-queue=<n>]\n"
      "       [--max-pending=<n>] [--overload-retry-ms=<n>]\n"
      "       [--quarantine-after=<n>] [--quarantine-ttl-ms=<n>]\n"
      "       [--max-request-ms=<n>] [--drain-ms=<n>] [--inject=<spec>]\n"
      "       [--fault-seed=<n>]\n"
      "   or: %s --client --socket=<path|tcp:host:port> [files.imp...]\n"
      "       [--endpoints=<e1,e2,...>] [--hedge-ms=<n>]\n"
      "       [--no-local-fallback] [--generated] [--repeat=<n>]\n"
      "       [--no-cache] [--stats] [--invariants] [--retry-attempts=<n>]\n"
      "       [--retry-base-ms=<n>] [--widening-delay=<k>] [--narrowing=<k>]\n"
      "       [--no-linearize] [--thresholds=a,b,...] [--max-cells=<n>]\n",
      Argv0, Argv0);
}

bool parseU64(const std::string &Val, const char *Flag, std::uint64_t &Out) {
  try {
    std::size_t End = 0;
    Out = std::stoull(Val, &End);
    if (End == Val.size())
      return true;
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
               Flag, Val.c_str());
  return false;
}

bool parseUnsigned(const std::string &Val, const char *Flag, unsigned &Out) {
  std::uint64_t Wide;
  if (!parseU64(Val, Flag, Wide) || Wide > 0xffffffffull) {
    Out = 0;
    return false;
  }
  Out = static_cast<unsigned>(Wide);
  return true;
}

bool parseDouble(const std::string &Val, const char *Flag, double &Out) {
  try {
    std::size_t End = 0;
    Out = std::stod(Val, &End);
    if (End == Val.size())
      return true;
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag,
               Val.c_str());
  return false;
}

bool parseArgs(int Argc, char **Argv, DaemonCliOptions &Opts) {
  std::uint64_t U = 0;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--client")
      Opts.ClientMode = true;
    else if (Arg.rfind("--socket=", 0) == 0)
      Opts.Server.SocketPath = Arg.substr(9);
    else if (Arg.rfind("--tcp=", 0) == 0)
      Opts.Server.TcpBind = Arg.substr(6);
    else if (Arg.rfind("--endpoints=", 0) == 0) {
      std::stringstream List(Arg.substr(12));
      std::string Item;
      while (std::getline(List, Item, ','))
        if (!Item.empty())
          Opts.Endpoints.push_back(Item);
    } else if (Arg.rfind("--hedge-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(11), "--hedge-ms", Opts.HedgeAfterMs))
        return false;
    } else if (Arg == "--no-local-fallback")
      Opts.LocalFallback = false;
    else if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(10), "--workers", Opts.Server.Workers))
        return false;
    } else if (Arg.rfind("--cache-mb=", 0) == 0) {
      if (!parseU64(Arg.substr(11), "--cache-mb", U))
        return false;
      Opts.Server.CacheMaxBytes = static_cast<std::size_t>(U) << 20;
    } else if (Arg.rfind("--cache-file=", 0) == 0)
      Opts.Server.CachePath = Arg.substr(13);
    else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(14), "--deadline-ms",
                    Opts.Server.Worker.Budget.DeadlineMs))
        return false;
    } else if (Arg.rfind("--max-rss-mb=", 0) == 0) {
      if (!parseU64(Arg.substr(13), "--max-rss-mb",
                    Opts.Server.Worker.MaxRssMb))
        return false;
    } else if (Arg.rfind("--recycle-after=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), "--recycle-after",
                         Opts.Server.Worker.RecycleAfter))
        return false;
    } else if (Arg.rfind("--retries=", 0) == 0) {
      unsigned Retries;
      if (!parseUnsigned(Arg.substr(10), "--retries", Retries))
        return false;
      Opts.Server.MaxAttempts = Retries + 1;
    } else if (Arg.rfind("--max-frame-mb=", 0) == 0) {
      if (!parseU64(Arg.substr(15), "--max-frame-mb", U))
        return false;
      Opts.Server.MaxFrameBytes = U << 20;
    } else if (Arg.rfind("--max-clients=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), "--max-clients",
                         Opts.Server.MaxClients))
        return false;
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      if (!parseU64(Arg.substr(12), "--max-queue", U))
        return false;
      Opts.Server.MaxQueueDepth = static_cast<std::size_t>(U);
    } else if (Arg.rfind("--max-pending=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), "--max-pending",
                         Opts.Server.MaxClientPending))
        return false;
    } else if (Arg.rfind("--overload-retry-ms=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(20), "--overload-retry-ms",
                         Opts.Server.OverloadRetryMs))
        return false;
    } else if (Arg.rfind("--quarantine-after=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(19), "--quarantine-after",
                         Opts.Server.QuarantineAfter))
        return false;
    } else if (Arg.rfind("--quarantine-ttl-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(20), "--quarantine-ttl-ms",
                    Opts.Server.QuarantineTtlMs))
        return false;
    } else if (Arg.rfind("--max-request-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(17), "--max-request-ms",
                    Opts.Server.MaxRequestMs))
        return false;
    } else if (Arg.rfind("--drain-ms=", 0) == 0) {
      if (!parseU64(Arg.substr(11), "--drain-ms", Opts.Server.DrainMs))
        return false;
    } else if (Arg.rfind("--retry-attempts=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--retry-attempts",
                         Opts.Retry.MaxAttempts))
        return false;
    } else if (Arg.rfind("--retry-base-ms=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), "--retry-base-ms",
                         Opts.Retry.BaseBackoffMs))
        return false;
    } else if (Arg.rfind("--inject=", 0) == 0) {
      std::string Error;
      if (!support::FaultPlan::global().parseRule(Arg.substr(9), Error)) {
        std::fprintf(stderr, "error: --inject: %s\n", Error.c_str());
        return false;
      }
    } else if (Arg.rfind("--fault-seed=", 0) == 0) {
      if (!parseU64(Arg.substr(13), "--fault-seed", U))
        return false;
      support::FaultPlan::global().setSeed(U);
    } else if (Arg == "--generated")
      Opts.AddGenerated = true;
    else if (Arg.rfind("--repeat=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(9), "--repeat", Opts.Repeat))
        return false;
    } else if (Arg == "--no-cache")
      Opts.NoCache = true;
    else if (Arg == "--stats")
      Opts.PrintStats = true;
    else if (Arg == "--invariants")
      Opts.PrintInvariants = true;
    else if (Arg.rfind("--widening-delay=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--widening-delay",
                         Opts.Engine.WideningDelay))
        return false;
    } else if (Arg.rfind("--narrowing=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(12), "--narrowing",
                         Opts.Engine.NarrowingPasses))
        return false;
    } else if (Arg == "--no-linearize")
      Opts.Engine.LinearizeGuards = false;
    else if (Arg.rfind("--thresholds=", 0) == 0) {
      std::stringstream List(Arg.substr(13));
      std::string Item;
      while (std::getline(List, Item, ',')) {
        double T;
        if (!parseDouble(Item, "--thresholds", T))
          return false;
        Opts.Engine.WideningThresholds.push_back(T);
      }
      std::sort(Opts.Engine.WideningThresholds.begin(),
                Opts.Engine.WideningThresholds.end());
    } else if (Arg.rfind("--max-cells=", 0) == 0) {
      if (!parseU64(Arg.substr(12), "--max-cells", Opts.MaxDbmCells))
        return false;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else
      Opts.Files.push_back(Arg);
  }
  if (!Opts.ClientMode && Opts.Server.SocketPath.empty() &&
      Opts.Server.TcpBind.empty()) {
    std::fprintf(stderr, "error: --socket=<path> or --tcp=<host:port> "
                         "is required\n");
    return false;
  }
  if (Opts.ClientMode && Opts.Server.SocketPath.empty() &&
      Opts.Endpoints.empty()) {
    std::fprintf(stderr, "error: --socket=<endpoint> or "
                         "--endpoints=<e1,e2,...> is required\n");
    return false;
  }
  if (!Opts.ClientMode && (Opts.AddGenerated || !Opts.Files.empty())) {
    std::fprintf(stderr,
                 "error: program arguments are client-mode only "
                 "(did you mean --client?)\n");
    return false;
  }
  if (Opts.ClientMode && Opts.Files.empty() && !Opts.AddGenerated &&
      !Opts.PrintStats) {
    std::fprintf(stderr, "error: no input files (and no --generated)\n");
    return false;
  }
  return true;
}

// --- Daemon mode ------------------------------------------------------------

server::Server *ActiveServer = nullptr;

void onTermSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop(); // async-signal-safe: flag + self-pipe
}

int runDaemon(const DaemonCliOptions &Opts) {
  server::Server Daemon(Opts.Server);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "optoctd: %s\n", Error.c_str());
    return 2;
  }
  ActiveServer = &Daemon;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTermSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  std::string Where = Opts.Server.SocketPath;
  if (Daemon.tcpPort() != 0) {
    if (!Where.empty())
      Where += " + ";
    Where += "tcp port " + std::to_string(Daemon.tcpPort());
    // Machine-greppable line: with --tcp=host:0 this is how a harness
    // learns the ephemeral port it must hand to clients.
    std::fprintf(stderr, "optoctd: tcp port %u\n", Daemon.tcpPort());
  }
  std::fprintf(stderr,
               "optoctd: serving on %s (%u workers, %zu MiB cache, "
               "simd tier %s)\n",
               Where.c_str(),
               static_cast<unsigned>(Daemon.stats().Workers),
               Opts.Server.CacheMaxBytes >> 20,
               simdTierName(activeSimdTier()));
  Daemon.serve();
  ActiveServer = nullptr;

  server::DaemonStats S = Daemon.stats();
  std::fprintf(stderr,
               "optoctd: served %llu requests (%llu cache hits, "
               "%llu crashed, %llu timeouts); shutting down\n",
               static_cast<unsigned long long>(S.Served),
               static_cast<unsigned long long>(S.CacheHits),
               static_cast<unsigned long long>(S.CrashedReplies),
               static_cast<unsigned long long>(S.TimeoutReplies));
  return 0;
}

// --- Client mode ------------------------------------------------------------

void printStats(const server::DaemonStats &S) {
  std::printf("daemon: requests=%llu served=%llu rejected=%llu "
              "cache_hits=%llu cache_misses=%llu cache_entries=%llu "
              "cache_bytes=%llu cache_evictions=%llu crashed=%llu "
              "timeouts=%llu workers=%llu spawned=%llu worker_crashes=%llu "
              "recycled=%llu hard_kills=%llu shed_queue_full=%llu "
              "shed_client_cap=%llu shed_draining=%llu queue_depth=%llu "
              "queue_peak=%llu coalesced_replies=%llu "
              "quarantine_replies=%llu quarantined_keys=%llu "
              "quarantined_total=%llu drained_jobs=%llu hellos=%llu "
              "version_rejects=%llu\n",
              static_cast<unsigned long long>(S.Requests),
              static_cast<unsigned long long>(S.Served),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.CacheMisses),
              static_cast<unsigned long long>(S.CacheEntries),
              static_cast<unsigned long long>(S.CacheBytes),
              static_cast<unsigned long long>(S.CacheEvictions),
              static_cast<unsigned long long>(S.CrashedReplies),
              static_cast<unsigned long long>(S.TimeoutReplies),
              static_cast<unsigned long long>(S.Workers),
              static_cast<unsigned long long>(S.WorkersSpawned),
              static_cast<unsigned long long>(S.WorkersCrashed),
              static_cast<unsigned long long>(S.WorkersRecycled),
              static_cast<unsigned long long>(S.HardKills),
              static_cast<unsigned long long>(S.ShedQueueFull),
              static_cast<unsigned long long>(S.ShedClientCap),
              static_cast<unsigned long long>(S.ShedDraining),
              static_cast<unsigned long long>(S.QueueDepth),
              static_cast<unsigned long long>(S.QueuePeak),
              static_cast<unsigned long long>(S.CoalescedReplies),
              static_cast<unsigned long long>(S.QuarantineReplies),
              static_cast<unsigned long long>(S.QuarantinedKeys),
              static_cast<unsigned long long>(S.QuarantinedTotal),
              static_cast<unsigned long long>(S.DrainedJobs),
              static_cast<unsigned long long>(S.Hellos),
              static_cast<unsigned long long>(S.VersionRejects));
}

int runClient(const DaemonCliOptions &Opts) {
  std::vector<runtime::BatchJob> Jobs;
  for (const std::string &File : Opts.Files) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Jobs.push_back({File, Buffer.str()});
  }
  if (Opts.AddGenerated)
    for (const workloads::WorkloadSpec &Spec : workloads::paperBenchmarks())
      Jobs.push_back({Spec.Name, workloads::generateProgram(Spec)});

  // Replica mode (--endpoints) routes every request through the
  // failover/hedging/local-degrade tier; single-endpoint mode keeps the
  // plain blocking client and its retry loop.
  std::unique_ptr<server::ReplicaClient> Replica;
  server::DaemonClient Client;
  std::string Error;
  if (!Opts.Endpoints.empty()) {
    server::ReplicaOptions RO;
    RO.Endpoints = Opts.Endpoints;
    RO.Retry = Opts.Retry;
    RO.HedgeAfterMs = Opts.HedgeAfterMs;
    RO.LocalFallback = Opts.LocalFallback;
    Replica = std::make_unique<server::ReplicaClient>(std::move(RO));
  } else if (!Client.connect(Opts.Server.SocketPath, Error)) {
    std::fprintf(stderr, "optoctd: %s\n", Error.c_str());
    return 2;
  }

  bool AllProven = true, AnyCrashed = false;
  for (unsigned Pass = 0; Pass != std::max(1u, Opts.Repeat); ++Pass) {
    for (const runtime::BatchJob &Job : Jobs) {
      server::AnalyzeRequest Req;
      Req.Job = Job;
      Req.Engine = Opts.Engine;
      Req.MaxDbmCells = Opts.MaxDbmCells;
      Req.NoCache = Opts.NoCache;
      server::AnalyzeResponse Resp;
      server::ReplicaReplyInfo Info;
      unsigned Attempts = 0;
      bool Delivered =
          Replica ? Replica->analyze(Req, Resp, Error, &Info)
                  : Client.analyzeRetry(Req, Opts.Retry, Resp, Error,
                                        &Attempts);
      if (Replica)
        Attempts = Info.Cycles;
      if (!Delivered) {
        std::fprintf(stderr, "optoctd: %s: %s\n", Job.Name.c_str(),
                     Error.c_str());
        return 2;
      }
      // Replica mode appends its provenance as a trailing column; the
      // single-endpoint line stays exactly as the CI smoke parses it.
      std::string PathCol =
          Replica ? std::string(" path=") + server::replyPathName(Info.Path)
                  : std::string();
      if (Resp.Overloaded) {
        std::printf("%-24s OVERLOADED after %u attempts (retry_ms=%llu)%s\n",
                    Job.Name.c_str(), Attempts,
                    static_cast<unsigned long long>(Resp.RetryMs),
                    PathCol.c_str());
        AllProven = false;
        continue;
      }
      if (!Resp.Ok) {
        std::printf("%-24s REJECTED: %s\n", Job.Name.c_str(),
                    Resp.Error.c_str());
        AllProven = false;
        continue;
      }
      runtime::JobResult R;
      if (!runtime::deserializeJobResult(Resp.ResultRecord, R, Error)) {
        std::fprintf(stderr, "optoctd: %s: bad result record: %s\n",
                     Job.Name.c_str(), Error.c_str());
        return 2;
      }
      const char *Label = R.Status == runtime::JobStatus::Ok ? "OK"
                          : R.Status == runtime::JobStatus::Degraded
                              ? "DEGRADED"
                          : R.Status == runtime::JobStatus::Failed ? "FAILED"
                          : R.Status == runtime::JobStatus::Timeout
                              ? "TIMEOUT"
                              : "CRASHED";
      std::printf("%-24s %s %u/%u cached=%d key=%s digest=%s%s\n",
                  R.Name.c_str(), Label, R.AssertsProven, R.AssertsTotal,
                  Resp.Cached ? 1 : 0, support::hex64(Resp.Key).c_str(),
                  support::hex64(support::fnv1a64(Resp.ResultRecord)).c_str(),
                  PathCol.c_str());
      if (R.Status == runtime::JobStatus::Crashed) {
        AnyCrashed = true;
        std::printf("    %s\n", R.Error.c_str());
      }
      if (R.Status != runtime::JobStatus::Ok ||
          R.AssertsProven != R.AssertsTotal)
        AllProven = false;
      if (Opts.PrintInvariants)
        for (const std::string &Inv : R.LoopInvariants)
          std::printf("    %s\n", Inv.c_str());
    }
  }

  if (Opts.PrintStats) {
    server::DaemonStats S;
    std::string StatsFrom;
    bool Got = Replica ? Replica->queryStats(S, Error, &StatsFrom)
                       : Client.queryStats(S, Error);
    if (!Got) {
      std::fprintf(stderr, "optoctd: stats: %s\n", Error.c_str());
      return 2;
    }
    if (!StatsFrom.empty())
      std::printf("stats_from %s\n", StatsFrom.c_str());
    printStats(S);
  }
  if (AnyCrashed)
    return 3;
  return AllProven ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  try {
    DaemonCliOptions Opts;
    if (!parseArgs(Argc, Argv, Opts)) {
      usage(Argv[0]);
      return 2;
    }
    return Opts.ClientMode ? runClient(Opts) : runDaemon(Opts);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "optoctd: fatal: %s\n", E.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "optoctd: fatal: unknown error\n");
    return 2;
  }
}
