//===- tools/optoct_fuzz.cpp - Differential domain fuzzer ------------------===//
///
/// \file
/// Long-running differential fuzzer: drives OptOctagon and the
/// APRON-style baseline through identical random operation sequences
/// and fails loudly on the first divergence (different emptiness,
/// different closed entries, or an unsound partition). The test suite
/// runs a bounded version of this; the tool lets you burn CPU on it.
///
///   optoct_fuzz [--seconds=N] [--seed=S] [--max-vars=N] [--verbose]
///
/// Exit code 0 if no divergence was found.
///
//===----------------------------------------------------------------------===//

#include "baseline/apron_octagon.h"
#include "oct/config.h"
#include "oct/octagon.h"
#include "support/random.h"
#include "support/timing.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace optoct;

namespace {

struct FuzzState {
  Octagon Opt;
  baseline::ApronOctagon Ref;
  explicit FuzzState(unsigned N) : Opt(N), Ref(N) {}
};

OctCons randomCons(Rng &R, unsigned N) {
  double Bound = R.intIn(-4, 16);
  unsigned I = static_cast<unsigned>(R.indexBelow(N));
  switch (R.intIn(0, 4)) {
  case 0:
    return OctCons::upper(I, Bound);
  case 1:
    return OctCons::lower(I, Bound);
  default: {
    unsigned J = static_cast<unsigned>(R.indexBelow(N));
    if (J == I)
      J = (J + 1) % N;
    switch (R.intIn(0, 2)) {
    case 0:
      return OctCons::diff(I, J, Bound);
    case 1:
      return OctCons::sum(I, J, Bound);
    default:
      return OctCons::negSum(I, J, Bound);
    }
  }
  }
}

LinExpr randomExpr(Rng &R, unsigned N) {
  LinExpr E;
  switch (R.intIn(0, 4)) {
  case 0:
    E.Const = R.intIn(-8, 8);
    break;
  case 1:
  case 2:
    E.Terms = {{R.chance(0.5) ? 1 : -1,
                static_cast<unsigned>(R.indexBelow(N))}};
    E.Const = R.intIn(-4, 4);
    break;
  default:
    for (int T = 0, K = R.intIn(1, 3); T != K; ++T)
      E.addTerm(R.intIn(-2, 2), static_cast<unsigned>(R.indexBelow(N)));
    E.Const = R.intIn(-4, 4);
    break;
  }
  return E;
}

bool equivalent(FuzzState &S, std::string &Why) {
  Octagon OptCopy = S.Opt;
  baseline::ApronOctagon RefCopy = S.Ref;
  OptCopy.close();
  RefCopy.close();
  if (OptCopy.isBottom() != RefCopy.isBottom()) {
    Why = "emptiness mismatch";
    return false;
  }
  if (OptCopy.isBottom())
    return true;
  for (unsigned I = 0; I != 2 * OptCopy.numVars(); ++I)
    for (unsigned J = 0; J <= (I | 1u); ++J)
      if (OptCopy.entry(I, J) != RefCopy.entry(I, J)) {
        char Buf[96];
        std::snprintf(Buf, sizeof(Buf), "entry (%u,%u): opt=%g apron=%g", I,
                      J, OptCopy.entry(I, J), RefCopy.entry(I, J));
        Why = Buf;
        return false;
      }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  double Seconds = 10.0;
  std::uint64_t Seed = 1;
  unsigned MaxVars = 16;
  bool Verbose = false;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--seconds=", 0) == 0)
      Seconds = std::stod(Arg.substr(10));
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::stoull(Arg.substr(7));
    else if (Arg.rfind("--max-vars=", 0) == 0)
      MaxVars = static_cast<unsigned>(std::stoul(Arg.substr(11)));
    else if (Arg == "--verbose")
      Verbose = true;
    else {
      std::fprintf(stderr, "usage: %s [--seconds=N] [--seed=S] "
                           "[--max-vars=N] [--verbose]\n",
                   Argv[0]);
      return 2;
    }
  }

  WallTimer Timer;
  Timer.start();
  Rng R(Seed);
  std::uint64_t Sequences = 0, Steps = 0;

  while (Timer.seconds() < Seconds) {
    unsigned N = 2 + static_cast<unsigned>(R.indexBelow(MaxVars - 1));
    FuzzState S1(N), S2(N);
    ++Sequences;
    for (int Step = 0, E = R.intIn(20, 80); Step != E; ++Step) {
      ++Steps;
      FuzzState &P = R.chance(0.5) ? S1 : S2;
      FuzzState &Other = &P == &S1 ? S2 : S1;
      switch (R.intIn(0, 9)) {
      case 0:
      case 1:
      case 2: {
        std::vector<OctCons> Cs;
        for (int K = 0, C = R.intIn(1, 3); K != C; ++K)
          Cs.push_back(randomCons(R, N));
        P.Opt.addConstraints(Cs);
        P.Ref.addConstraints(Cs);
        break;
      }
      case 3:
      case 4:
      case 5: {
        unsigned X = static_cast<unsigned>(R.indexBelow(N));
        LinExpr Expr = randomExpr(R, N);
        P.Opt.assign(X, Expr);
        P.Ref.assign(X, Expr);
        break;
      }
      case 6: {
        unsigned X = static_cast<unsigned>(R.indexBelow(N));
        P.Opt.havoc(X);
        P.Ref.havoc(X);
        break;
      }
      case 7:
        P.Opt = Octagon::join(P.Opt, Other.Opt);
        P.Ref = baseline::ApronOctagon::join(P.Ref, Other.Ref);
        break;
      case 8:
        P.Opt = Octagon::meet(P.Opt, Other.Opt);
        P.Ref = baseline::ApronOctagon::meet(P.Ref, Other.Ref);
        break;
      default:
        P.Opt = Octagon::widen(P.Opt, Other.Opt);
        P.Ref = baseline::ApronOctagon::widen(P.Ref, Other.Ref);
        break;
      }
      std::string Why;
      if (!equivalent(P, Why)) {
        std::fprintf(stderr,
                     "DIVERGENCE after %llu steps (seq %llu, n=%u): %s\n",
                     static_cast<unsigned long long>(Steps),
                     static_cast<unsigned long long>(Sequences), N,
                     Why.c_str());
        return 1;
      }
      if (Octagon(P.Opt).isBottom()) {
        P.Opt = Octagon(N);
        P.Ref = baseline::ApronOctagon(N);
      }
    }
    if (Verbose && Sequences % 100 == 0)
      std::printf("%llu sequences, %llu steps, %.1fs\n",
                  static_cast<unsigned long long>(Sequences),
                  static_cast<unsigned long long>(Steps), Timer.seconds());
  }

  std::printf("fuzzed %llu sequences (%llu operations) in %.1fs: no "
              "divergence\n",
              static_cast<unsigned long long>(Sequences),
              static_cast<unsigned long long>(Steps), Timer.seconds());
  return 0;
}
