//===- tools/optoct_cli.cpp - Command-line analyzer -----------------------===//
///
/// \file
/// The command-line front end: analyze a mini-IMP program with the
/// octagon domain and report assertion results, invariants, and
/// statistics.
///
///   optoct <file.imp> [options]
///     --library=opt|apron   octagon implementation (default opt)
///     --invariants          print the invariant at every block entry
///     --loop-invariants     print invariants at loop heads only
///     --stats               closure count/cycles, octagon time
///     --dump-cfg            print the control-flow graph
///     --no-decomposition    disable online decomposition
///     --no-vectorization    disable the AVX kernels
///     --no-sparse           disable the sparse closure
///     --threshold=<t>       sparsity threshold (default 0.75)
///     --widening-delay=<k>  joins before widening (default 2)
///     --narrowing=<k>       descending passes (default 1)
///     --thresholds=a,b,...  widening thresholds (ascending)
///     --no-linearize        disable guard linearization
///
/// Exit code: 0 if all assertions proven, 1 if some are unknown,
/// 2 on usage/parse errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/engine.h"
#include "baseline/apron_octagon.h"
#include "cfg/cfg.h"
#include "lang/parser.h"
#include "oct/config.h"
#include "oct/octagon.h"
#include "support/stats.h"
#include "support/timing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

using namespace optoct;

namespace {

/// stoul/stod throw on garbage and out-of-range values; a CLI must
/// diagnose, not terminate.
bool parseUnsigned(const std::string &Val, const char *Flag, unsigned &Out) {
  try {
    std::size_t End = 0;
    unsigned long Wide = std::stoul(Val, &End);
    if (End == Val.size() && Wide <= 0xfffffffful) {
      Out = static_cast<unsigned>(Wide);
      return true;
    }
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n",
               Flag, Val.c_str());
  return false;
}

bool parseDouble(const std::string &Val, const char *Flag, double &Out) {
  try {
    std::size_t End = 0;
    Out = std::stod(Val, &End);
    if (End == Val.size())
      return true;
  } catch (const std::exception &) {
  }
  std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag,
               Val.c_str());
  return false;
}

struct CliOptions {
  std::string File;
  bool UseApron = false;
  bool PrintInvariants = false;
  bool PrintLoopInvariants = false;
  bool PrintStats = false;
  bool DumpCfg = false;
  analysis::AnalysisOptions Engine;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file.imp> [--library=opt|apron] [--invariants]\n"
               "       [--loop-invariants] [--stats] [--dump-cfg]\n"
               "       [--no-decomposition] [--no-vectorization] "
               "[--no-sparse]\n"
               "       [--threshold=<t>] [--widening-delay=<k>] "
               "[--narrowing=<k>]\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--invariants")
      Opts.PrintInvariants = true;
    else if (Arg == "--loop-invariants")
      Opts.PrintLoopInvariants = true;
    else if (Arg == "--stats")
      Opts.PrintStats = true;
    else if (Arg == "--dump-cfg")
      Opts.DumpCfg = true;
    else if (Arg == "--library=opt")
      Opts.UseApron = false;
    else if (Arg == "--library=apron")
      Opts.UseApron = true;
    else if (Arg == "--no-decomposition")
      octConfig().EnableDecomposition = false;
    else if (Arg == "--no-vectorization")
      octConfig().EnableVectorization = false;
    else if (Arg == "--no-sparse")
      octConfig().EnableSparse = false;
    else if (Arg.rfind("--threshold=", 0) == 0) {
      if (!parseDouble(Arg.substr(12), "--threshold",
                       octConfig().SparsityThreshold))
        return false;
    } else if (Arg.rfind("--widening-delay=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(17), "--widening-delay",
                         Opts.Engine.WideningDelay))
        return false;
    } else if (Arg.rfind("--narrowing=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(12), "--narrowing",
                         Opts.Engine.NarrowingPasses))
        return false;
    } else if (Arg == "--no-linearize")
      Opts.Engine.LinearizeGuards = false;
    else if (Arg.rfind("--thresholds=", 0) == 0) {
      std::stringstream List(Arg.substr(13));
      std::string Item;
      while (std::getline(List, Item, ',')) {
        double T;
        if (!parseDouble(Item, "--thresholds", T))
          return false;
        Opts.Engine.WideningThresholds.push_back(T);
      }
      std::sort(Opts.Engine.WideningThresholds.begin(),
                Opts.Engine.WideningThresholds.end());
    }
    else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.File.empty())
      Opts.File = Arg;
    else {
      std::fprintf(stderr, "error: multiple input files\n");
      return false;
    }
  }
  if (Opts.File.empty()) {
    std::fprintf(stderr, "error: no input file\n");
    return false;
  }
  return true;
}

template <typename DomainT>
int runAnalysis(const CliOptions &Opts, const cfg::Cfg &Graph,
                void (*SetSink)(OctStats *)) {
  OctStats Stats;
  SetSink(&Stats);
  WallTimer Timer;
  Timer.start();
  auto Result = analysis::analyze<DomainT>(Graph, Opts.Engine);
  Timer.stop();
  SetSink(nullptr);

  if (Opts.PrintInvariants || Opts.PrintLoopInvariants) {
    std::printf("invariants:\n");
    for (unsigned B : Graph.rpo()) {
      const cfg::BasicBlock &Block = Graph.block(B);
      if (Opts.PrintLoopInvariants && !Block.IsLoopHead)
        continue;
      std::printf("  bb%u%s: ", B, Block.IsLoopHead ? " (loop head)" : "");
      if (!Result.BlockInvariant[B]) {
        std::printf("unreachable\n");
        continue;
      }
      DomainT Inv = *Result.BlockInvariant[B];
      std::printf("%s\n", Inv.str(&Block.SlotNames).c_str());
    }
  }

  unsigned Proven = Result.assertsProven();
  std::size_t Total = Result.Asserts.size();
  for (const auto &A : Result.Asserts)
    if (!A.Proven)
      std::printf("assert at line %d: unknown\n", A.Line);
  std::printf("%u of %zu assertions proven\n", Proven, Total);

  if (Opts.PrintStats) {
    std::printf("stats: %llu closures (n in [%u, %u]), %.1f Mcycles in "
                "closure,\n       %.1f Mcycles in octagon ops, %.1f ms "
                "analysis time, %llu block visits\n",
                static_cast<unsigned long long>(Stats.numClosures()),
                Stats.minVars(), Stats.maxVars(),
                static_cast<double>(Stats.closureCycles()) / 1e6,
                static_cast<double>(Result.OctagonCycles) / 1e6,
                Timer.seconds() * 1e3,
                static_cast<unsigned long long>(Result.BlockVisits));
  }
  return Proven == Total ? 0 : 1;
}

int run(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }

  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  std::string Error;
  auto Prog = lang::parseProgram(Buffer.str(), Error);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", Opts.File.c_str(), Error.c_str());
    return 2;
  }
  cfg::Cfg Graph = cfg::Cfg::build(*Prog);
  if (Opts.DumpCfg)
    std::printf("%s", Graph.str().c_str());

  if (Opts.UseApron)
    return runAnalysis<baseline::ApronOctagon>(Opts, Graph,
                                               baseline::setApronStatsSink);
  return runAnalysis<Octagon>(Opts, Graph, setOctStatsSink);
}

} // namespace

int main(int Argc, char **Argv) {
  // Anything escaping here would std::terminate with no diagnostic.
  try {
    return run(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "optoct: fatal: %s\n", E.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "optoct: fatal: unknown error\n");
    return 2;
  }
}
